package fleet_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"pimflow/internal/fleet"
	"pimflow/internal/load"
	"pimflow/internal/serve"
	"pimflow/internal/verify"
)

// toyFleetScenario mirrors load's toy workload — two toy-model
// instances on 16/8 slices, rate ~2x one machine's batched capacity so
// admission decisions actually happen — lifted to a fleet.
func toyFleetScenario(seed int64, n int, process string, machines int, replicas map[string]int) fleet.Scenario {
	return fleet.Scenario{
		Scenario: load.Scenario{
			Name:             "fleet-toy-" + process,
			Seed:             seed,
			Requests:         n,
			Process:          process,
			RatePerMCycle:    300,
			DiurnalAmplitude: 0.8,
			DiurnalPeriod:    200_000,
			BurstFactor:      8,
			BurstDwell:       50_000,
			QueueDepth:       32,
			Admission:        "shed-oldest",
			Models: []load.ModelLoad{
				{Name: "toy-gold", Model: "toy", Policy: "PIMFlow", TotalChannels: 16, PIMChannels: 8,
					SLO: "gold", MaxBatch: 8, WindowCycles: 20_000},
				{Name: "toy-bronze", Model: "toy", Policy: "PIMFlow", TotalChannels: 16, PIMChannels: 8,
					SLO: "bronze", MaxBatch: 8, WindowCycles: 20_000},
			},
		},
		Machines: machines,
		Replicas: replicas,
		Certify:  true,
	}
}

func newFleet(t testing.TB, sc fleet.Scenario) *fleet.Fleet {
	t.Helper()
	f, err := fleet.NewScenarioFleet(sc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Shutdown(context.Background()) })
	return f
}

func runFleet(t testing.TB, sc fleet.Scenario, reqs []load.Request) (*fleet.Fleet, *load.Report) {
	t.Helper()
	f := newFleet(t, sc)
	rep, err := fleet.Replay(f, sc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	return f, rep
}

func stripWall(r *load.Report) load.Report {
	c := *r
	c.WallSeconds, c.ReqPerSec = 0, 0
	return c
}

// The tentpole equivalence property: a 1-machine fleet is the serving
// stack — the same seeded trace replayed through fleet.Replay and
// through load.Replay on a bare server produces identical reports AND
// identical schedule certificates (so per-request virtual-cycle
// latencies match lease for lease), across every arrival process.
func TestOneMachineFleetMatchesServe(t *testing.T) {
	for _, process := range []string{"poisson", "diurnal", "bursty"} {
		sc := toyFleetScenario(11, 2000, process, 1, nil)
		reqs, err := load.Generate(sc.Scenario)
		if err != nil {
			t.Fatal(err)
		}

		adm, err := serve.ParseAdmissionPolicy(sc.Admission)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.NewServer(serve.Config{QueueDepth: sc.QueueDepth, Admission: adm, Certify: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Shutdown(context.Background()) })
		if err := load.LoadModels(srv, sc.Scenario); err != nil {
			t.Fatal(err)
		}
		direct, err := load.Replay(srv, sc.Scenario, reqs)
		if err != nil {
			t.Fatal(err)
		}

		f, frep := runFleet(t, sc, reqs)
		if !reflect.DeepEqual(stripWall(direct), stripWall(frep)) {
			t.Fatalf("%s: fleet report diverged from serve\n serve: %+v\n fleet: %+v",
				process, stripWall(direct), stripWall(frep))
		}
		if !reflect.DeepEqual(srv.Certificate(), f.Machine(0).Certificate()) {
			t.Fatalf("%s: fleet machine schedule diverged from serve schedule", process)
		}
	}
}

// Replica monotonicity: under a fixed seeded trace, replicating the hot
// model onto a second machine never increases p99 — the JSQ router can
// only relieve the queue the single replica was absorbing alone. The
// rate is heavy (deep queues) but below the shed point: when overload
// sheds requests the two configs serve different populations and their
// percentiles rank different requests, so the property is stated — and
// pinned — on the full served set. Checked across all three processes.
func TestAddReplicaNeverRaisesP99(t *testing.T) {
	scenario := func(process string, replicas map[string]int) fleet.Scenario {
		sc := toyFleetScenario(7, 3000, process, 2, replicas)
		sc.QueueDepth = 4096
		// Mean rates sit just under each process's shed point (bursty
		// spikes to 8x its base during a burst).
		sc.RatePerMCycle = 180
		if process == "bursty" {
			sc.RatePerMCycle = 55
		}
		return sc
	}
	for _, process := range []string{"poisson", "diurnal", "bursty"} {
		base := scenario(process, nil)
		reqs, err := load.Generate(base.Scenario)
		if err != nil {
			t.Fatal(err)
		}
		_, one := runFleet(t, base, reqs)
		_, two := runFleet(t, scenario(process, map[string]int{"toy-gold": 2}), reqs)

		if one.Shed+one.Rejected+two.Shed+two.Rejected != 0 {
			t.Fatalf("%s: scenario saturated (shed %d/%d, rejected %d/%d) — property needs equal served sets",
				process, one.Shed, two.Shed, one.Rejected, two.Rejected)
		}
		if one.Served != two.Served || one.Served != len(reqs) {
			t.Fatalf("%s: served sets differ: %d vs %d of %d", process, one.Served, two.Served, len(reqs))
		}
		if two.P99 > one.P99 {
			t.Fatalf("%s: adding a replica raised p99: %d -> %d", process, one.P99, two.P99)
		}
	}
}

// Determinism at fleet scale: identical scenario (machines, replicas,
// graphs), identical report — fresh fleets, every run.
func TestFleetReplayDeterministic(t *testing.T) {
	sc := toyFleetScenario(23, 2000, "bursty", 2, map[string]int{"toy-gold": 2})
	reqs, err := load.Generate(sc.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	_, a := runFleet(t, sc, reqs)
	_, b := runFleet(t, sc, reqs)
	if !reflect.DeepEqual(stripWall(a), stripWall(b)) {
		t.Fatalf("same scenario, different reports:\n a: %+v\n b: %+v", stripWall(a), stripWall(b))
	}
}

// Bin-packing safety: eager placement never oversubscribes a machine's
// channel groups. The placement log is summed directly and the full
// certificate must pass FL-CAPACITY; the dynamic half (SR-DEMAND per
// machine) rides along in every certified replay in this suite.
func TestBinPackingNeverOversubscribes(t *testing.T) {
	f, err := fleet.New(fleet.Config{Machines: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Shutdown(context.Background()) })

	spec := func(name string, total, pim int) serve.ModelSpec {
		return serve.ModelSpec{Name: name, Model: "toy", Policy: "PIMFlow", TotalChannels: total, PIMChannels: pim}
	}
	if err := f.Deploy(spec("big", 32, 16), 1); err != nil { // 16+16: a whole machine
		t.Fatal(err)
	}
	if err := f.Deploy(spec("mid", 16, 8), 2); err != nil { // 8+8, two replicas
		t.Fatal(err)
	}
	small := 0
	for { // 4+4 each; pack until the fleet is genuinely full
		if err := f.Deploy(spec("small"+string(rune('a'+small)), 8, 4), 1); err != nil {
			if !errors.Is(err, fleet.ErrNoCapacity) {
				t.Fatal(err)
			}
			break
		}
		small++
	}
	if small == 0 {
		t.Fatal("no small model fit a 3-machine fleet")
	}

	cert := f.Certificate()
	used := map[string]serve.Demand{}
	for _, p := range cert.Placements {
		if !p.Active {
			continue
		}
		d := used[p.Machine]
		d.GPU += p.GPU
		d.PIM += p.PIM
		used[p.Machine] = d
	}
	for _, m := range cert.Machines {
		if used[m.Name].GPU > m.GPUChannels || used[m.Name].PIM > m.PIMChannels {
			t.Fatalf("machine %s oversubscribed: %+v over %d+%d", m.Name, used[m.Name], m.GPUChannels, m.PIMChannels)
		}
	}
	if diags := verify.Fleet(cert); len(diags) != 0 {
		t.Fatalf("packed fleet certificate dirty: %v", diags)
	}
	for _, d := range f.Deployments() {
		if d.Name == "mid" && len(d.Replicas) != 2 {
			t.Fatalf("mid replicas = %v, want 2 distinct machines", d.Replicas)
		}
	}
}

// Splitter routing is a pure function of (seed, route): identical
// scenarios split identically, and the weighted draw actually skews
// traffic toward the heavy branch.
func TestSplitterDeterministic(t *testing.T) {
	sc := fleet.Scenario{
		Scenario: load.Scenario{
			Name: "fleet-split", Seed: 31, Requests: 1200, Process: "poisson",
			RatePerMCycle: 100, QueueDepth: 64, Admission: "shed-oldest",
			Models: []load.ModelLoad{{Name: "split"}},
		},
		Machines: 2,
		Backends: []load.ModelLoad{
			{Name: "toy-a", Model: "toy", Policy: "PIMFlow", TotalChannels: 16, PIMChannels: 8, MaxBatch: 8, WindowCycles: 20_000},
			{Name: "toy-b", Model: "toy", Policy: "PIMFlow", TotalChannels: 16, PIMChannels: 8, MaxBatch: 8, WindowCycles: 20_000},
		},
		Graphs: []fleet.Graph{{Name: "split", Root: "root", Nodes: []fleet.GraphNode{
			{Name: "root", Type: "splitter", Steps: []fleet.GraphStep{
				{Model: "toy-a", Weight: 3}, {Model: "toy-b", Weight: 1},
			}},
		}}},
		Certify: true,
	}
	reqs, err := load.Generate(sc.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	fa, a := runFleet(t, sc, reqs)
	_, b := runFleet(t, sc, reqs)
	if !reflect.DeepEqual(stripWall(a), stripWall(b)) {
		t.Fatalf("splitter replay not deterministic:\n a: %+v\n b: %+v", stripWall(a), stripWall(b))
	}
	byModel := map[string]int{}
	for _, h := range fa.Certificate().Hops {
		byModel[h.Model]++
	}
	if byModel["toy-a"] == 0 || byModel["toy-b"] == 0 {
		t.Fatalf("splitter starved a branch: %v", byModel)
	}
	if byModel["toy-a"] <= byModel["toy-b"] {
		t.Fatalf("3:1 split inverted: %v", byModel)
	}
}

// A Sequence across two whole-machine models forces every route to hop
// machines: placement must spread the models, each second hop's arrival
// must be pinned to the first hop's completion, and the route latency
// must close the telescoping sum.
func TestSequenceCrossMachinePinning(t *testing.T) {
	sc := fleet.Scenario{
		Scenario: load.Scenario{
			Name: "fleet-chain", Seed: 5, Requests: 300, Process: "poisson",
			RatePerMCycle: 40, QueueDepth: 64, Admission: "shed-oldest",
			Models: []load.ModelLoad{{Name: "chain"}},
		},
		Machines: 2,
		Backends: []load.ModelLoad{
			{Name: "front", Model: "toy", Policy: "PIMFlow", TotalChannels: 32, PIMChannels: 16, MaxBatch: 8, WindowCycles: 20_000},
			{Name: "back", Model: "toy", Policy: "PIMFlow", TotalChannels: 32, PIMChannels: 16, MaxBatch: 8, WindowCycles: 20_000},
		},
		Graphs: []fleet.Graph{{Name: "chain", Root: "root", Nodes: []fleet.GraphNode{
			{Name: "root", Type: "sequence", Steps: []fleet.GraphStep{
				{Model: "front"}, {Model: "back"},
			}},
		}}},
		Certify: true,
	}
	reqs, err := load.Generate(sc.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	f, rep := runFleet(t, sc, reqs)
	if rep.Served == 0 {
		t.Fatal("no routes served")
	}

	cert := f.Certificate()
	machinesSeen := map[string]bool{}
	routes := map[int64][]verify.FleetHop{}
	for _, h := range cert.Hops {
		machinesSeen[h.Machine] = true
		routes[h.Route] = append(routes[h.Route], h)
	}
	if len(machinesSeen) != 2 {
		t.Fatalf("whole-machine models did not spread: hops on %v", machinesSeen)
	}
	for route, hs := range routes {
		if len(hs) != 2 {
			t.Fatalf("route %d has %d hops, want 2", route, len(hs))
		}
		if hs[0].Model != "front" || hs[1].Model != "back" {
			t.Fatalf("route %d order: %s then %s", route, hs[0].Model, hs[1].Model)
		}
		if hs[0].Machine == hs[1].Machine {
			t.Fatalf("route %d stayed on %s", route, hs[0].Machine)
		}
		if hs[1].Arrival != hs[0].End {
			t.Fatalf("route %d second hop arrival %d not pinned to first hop end %d",
				route, hs[1].Arrival, hs[0].End)
		}
	}
}

// Ensemble branches run concurrently in virtual time and join at the
// slowest branch: route latency is max(branch end) - arrival.
func TestEnsembleJoinsAtSlowestBranch(t *testing.T) {
	sc := fleet.Scenario{
		Scenario: load.Scenario{
			Name: "fleet-ens", Seed: 9, Requests: 200, Process: "poisson",
			RatePerMCycle: 40, QueueDepth: 64, Admission: "shed-oldest",
			Models: []load.ModelLoad{{Name: "panel"}},
		},
		Machines: 2,
		Backends: []load.ModelLoad{
			{Name: "toy-a", Model: "toy", Policy: "PIMFlow", TotalChannels: 16, PIMChannels: 8, MaxBatch: 8, WindowCycles: 20_000},
			{Name: "toy-b", Model: "toy", Policy: "PIMFlow", TotalChannels: 16, PIMChannels: 8, MaxBatch: 8, WindowCycles: 20_000},
		},
		Graphs: []fleet.Graph{{Name: "panel", Root: "root", Nodes: []fleet.GraphNode{
			{Name: "root", Type: "ensemble", Steps: []fleet.GraphStep{
				{Model: "toy-a"}, {Model: "toy-b"},
			}},
		}}},
		Certify: true,
	}
	reqs, err := load.Generate(sc.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	f, rep := runFleet(t, sc, reqs)
	if rep.Served == 0 {
		t.Fatal("no routes served")
	}
	routes := map[int64][]verify.FleetHop{}
	var minArrival = map[int64]int64{}
	for _, h := range f.Certificate().Hops {
		routes[h.Route] = append(routes[h.Route], h)
		if _, ok := minArrival[h.Route]; !ok || h.Arrival < minArrival[h.Route] {
			minArrival[h.Route] = h.Arrival
		}
	}
	for route, hs := range routes {
		if len(hs) != 2 {
			t.Fatalf("route %d has %d hops, want 2 branches", route, len(hs))
		}
		if hs[0].Arrival != hs[1].Arrival {
			t.Fatalf("route %d branches issued at different cycles: %d vs %d",
				route, hs[0].Arrival, hs[1].Arrival)
		}
	}
}

// Modelmesh-style on-demand load: a request for a registered-but-
// unplaced model triggers placement, evicting least-recently-used
// models when the machine is full; the placement log keeps the history.
func TestOnDemandLoadEvictsLRU(t *testing.T) {
	sc := fleet.Scenario{
		Scenario: load.Scenario{
			Name: "fleet-lru", Seed: 1, QueueDepth: 16, Admission: "reject",
			Models: []load.ModelLoad{
				{Name: "a", Model: "toy", Policy: "PIMFlow", TotalChannels: 16, PIMChannels: 8, MaxBatch: 1},
				{Name: "b", Model: "toy", Policy: "PIMFlow", TotalChannels: 16, PIMChannels: 8, MaxBatch: 1},
			},
		},
		Machines: 1,
		Certify:  true,
	}
	f := newFleet(t, sc)
	// "wide" needs the whole machine; register it lazily.
	if err := f.Register(serve.ModelSpec{Name: "wide", Model: "toy", Policy: "PIMFlow",
		TotalChannels: 32, PIMChannels: 16, MaxBatch: 1}, 1); err != nil {
		t.Fatal(err)
	}
	reqs := []load.Request{
		{Cycle: 1_000, Model: "a"},
		{Cycle: 50_000, Model: "b"},
		{Cycle: 100_000, Model: "wide"}, // forces eviction of a AND b
	}
	rep, err := fleet.Replay(f, sc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != 3 {
		t.Fatalf("served %d of 3", rep.Served)
	}
	active := map[string]bool{}
	inactive := map[string]bool{}
	for _, p := range f.Certificate().Placements {
		if p.Active {
			active[p.Model] = true
		} else {
			inactive[p.Model] = true
		}
	}
	if !active["wide"] || active["a"] || active["b"] {
		t.Fatalf("active placements: %v (want only wide)", active)
	}
	if !inactive["a"] || !inactive["b"] {
		t.Fatalf("evicted placements missing from the log: %v", inactive)
	}
	if n := f.Metrics().Counter("fleet.on_demand_loads"); n < 1 {
		t.Fatalf("on-demand load not counted: %v", n)
	}
}

// The live router path under -race: concurrent Infer calls across plain
// models, a sequence graph, and a switch graph, then a clean drain.
func TestLiveInferConcurrent(t *testing.T) {
	f, err := fleet.New(fleet.Config{Machines: 2, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	spec := func(name string) serve.ModelSpec {
		return serve.ModelSpec{Name: name, Model: "toy", Policy: "PIMFlow", TotalChannels: 16, PIMChannels: 8, MaxBatch: 4}
	}
	if err := f.Deploy(spec("toy-a"), 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(spec("toy-b"), 1); err != nil {
		t.Fatal(err)
	}
	if err := f.RegisterGraph(fleet.Graph{Name: "chain", Root: "root", Nodes: []fleet.GraphNode{
		{Name: "root", Type: "sequence", Steps: []fleet.GraphStep{{Model: "toy-a"}, {Model: "toy-b"}}},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := f.RegisterGraph(fleet.Graph{Name: "pick", Root: "root", Nodes: []fleet.GraphNode{
		{Name: "root", Type: "switch", Steps: []fleet.GraphStep{
			{Model: "toy-a", Condition: "fast"}, {Model: "toy-b"},
		}},
	}}); err != nil {
		t.Fatal(err)
	}

	reqs := []fleet.Request{
		{Model: "toy-a"},
		{Model: "toy-b"},
		{Graph: "chain"},
		{Graph: "pick", Cond: "fast"},
		{Graph: "pick", Cond: "other"}, // falls to the default step
	}
	var wg sync.WaitGroup
	errc := make(chan error, 100)
	for c := 0; c < 10; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				req := reqs[(c+i)%len(reqs)]
				resp, err := f.Infer(context.Background(), req)
				if err != nil {
					errc <- err
					return
				}
				if resp.LatencyCycles <= 0 || len(resp.Hops) == 0 {
					errc <- errors.New("empty routed response")
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := f.Metrics().Counter("fleet.requests"); got != int64(100) {
		t.Fatalf("fleet.requests = %v, want 100", got)
	}
	if err := f.Shutdown(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// Registration guardrails: bad graphs and bad deployments fail loudly.
func TestRegistrationValidation(t *testing.T) {
	f, err := fleet.New(fleet.Config{Machines: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Shutdown(context.Background()) })
	spec := serve.ModelSpec{Name: "toy-a", Model: "toy", Policy: "PIMFlow", TotalChannels: 16, PIMChannels: 8}
	if err := f.Deploy(spec, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(spec, 1); !errors.Is(err, fleet.ErrAlreadyDeployed) {
		t.Fatalf("duplicate deploy: %v", err)
	}
	if err := f.Register(serve.ModelSpec{Name: "x", Model: "toy"}, 3); err == nil {
		t.Fatal("3 replicas on a 2-machine fleet accepted")
	}
	if err := f.RegisterGraph(fleet.Graph{Name: "g", Root: "root", Nodes: []fleet.GraphNode{
		{Name: "root", Type: "sequence", Steps: []fleet.GraphStep{{Model: "ghost"}}},
	}}); !errors.Is(err, fleet.ErrUnknownModel) {
		t.Fatalf("graph over unknown model: %v", err)
	}
	if err := f.RegisterGraph(fleet.Graph{Name: "cyc", Root: "a", Nodes: []fleet.GraphNode{
		{Name: "a", Type: "sequence", Steps: []fleet.GraphStep{{Node: "b"}}},
		{Name: "b", Type: "sequence", Steps: []fleet.GraphStep{{Node: "a"}}},
	}}); err == nil {
		t.Fatal("cyclic graph accepted")
	}
	if err := f.RegisterGraph(fleet.Graph{Name: "ens", Root: "r", Nodes: []fleet.GraphNode{
		{Name: "x", Type: "sequence", Steps: []fleet.GraphStep{{Model: "toy-a"}}},
		{Name: "r", Type: "ensemble", Steps: []fleet.GraphStep{{Node: "x"}}},
	}}); err == nil {
		t.Fatal("ensemble over a nested node accepted (FL-NODE restricts branches to models)")
	}
}
