// Package fleet composes N simulated PIM-GPU machines — each a full
// serving stack (registry, admission queue, continuous batcher,
// virtual-time scheduler) — behind a router tier. The router owns two
// things the single-machine stack cannot express:
//
//   - Placement. Models are compiled once (one Registry acts as the
//     compile cache over a shared profile store) and their channel-group
//     demand is bin-packed across machines: hot models replicate onto
//     distinct machines, cold models pack beside them, and — modelmesh
//     style — a request for a registered-but-unplaced model triggers an
//     on-demand load, evicting least-recently-used models when a machine
//     is full.
//   - Inference-graph routing. Requests may name a graph of kserve-style
//     Sequence / Ensemble / Splitter / Switch nodes instead of a single
//     model, so one request traverses multiple models on multiple
//     machines with per-hop lifecycle spans.
//
// All latency lives on the shared virtual timeline: every machine's
// cycles are in one global clock domain, a Sequence hop's arrival is
// pinned to its predecessor's completion, and the deterministic replay
// (Replay) reports identical percentiles for identical seeded scenarios
// — the property that makes placement policies testable (adding a
// replica never increases p99). When Config.Certify is on, every
// machine records its SR-* schedule certificate and the router records
// the FL-* fleet certificate (placements, graphs, hops) for
// verify.Fleet.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pimflow/internal/obs"
	"pimflow/internal/profcache"
	"pimflow/internal/serve"
	"pimflow/internal/verify"
)

// Re-exported inference-graph types: the registration format is exactly
// what the certificate records, so graphs verify as registered.
type (
	// Graph is one inference graph: named nodes and a root.
	Graph = verify.FleetGraph
	// GraphNode is one graph node ("sequence", "ensemble", "splitter",
	// "switch").
	GraphNode = verify.FleetGraphNode
	// GraphStep is one step of a node: a model hop or a nested node.
	GraphStep = verify.FleetGraphStep
)

// Errors of the fleet layer (machine-level errors pass through from
// serve unchanged).
var (
	ErrUnknownModel    = errors.New("fleet: model not deployed")
	ErrUnknownGraph    = errors.New("fleet: graph not registered")
	ErrAlreadyDeployed = errors.New("fleet: model already deployed")
	ErrNoCapacity      = errors.New("fleet: no machine can hold the model")
	ErrNoSwitchMatch   = errors.New("fleet: no switch step matches the request condition")
	ErrTooManyReplicas = errors.New("fleet: replica count exceeds the machine count (replicas sit on distinct machines)")
)

// Config parameterizes a Fleet.
type Config struct {
	// Machines is the machine count (default 2); Machine is every
	// machine's shape (zero value takes the paper's 16+16 default).
	Machines int
	Machine  serve.Machine
	// QueueDepth, Admission, and Workers configure each machine's serve
	// stack (serve.Config semantics).
	QueueDepth int
	Admission  serve.AdmissionPolicy
	Workers    int
	// MaxBatch, BatchWindow, BatchWindowCycles, and SLOClasses are the
	// per-machine serving defaults model specs fold over.
	MaxBatch          int
	BatchWindow       time.Duration
	BatchWindowCycles int64
	SLOClasses        []serve.SLOClass
	// Metrics receives the router-tier counters; per-machine serving
	// metrics live in per-machine registries (Fleet.MachineMetrics) so
	// machines never collide on the serve.* keys. Nil gets a private
	// registry.
	Metrics *obs.Metrics
	// Trace, when non-nil, is shared by the router (wall-clock routing
	// lanes) and every machine (simulated-timeline spans).
	Trace *obs.Trace
	// Certify records the FL-* fleet certificate and every machine's
	// SR-* schedule certificate (see Fleet.Certificate). Meant for
	// bounded runs, like serve.Config.Certify.
	Certify bool
	// Seed drives the Splitter's deterministic weighted hash.
	Seed int64
	// TimeShare lets placement overcommit a machine's channel groups
	// when no machine fits even after eviction: the placement is flagged
	// in the certificate and its safety is proven dynamically by the
	// machine's SR-OVERLAP check (models time-share the channel groups
	// through the scheduler instead of owning them).
	TimeShare bool
}

func (c Config) withDefaults() Config {
	if c.Machines <= 0 {
		c.Machines = 2
	}
	if c.Machine == (serve.Machine{}) {
		c.Machine = serve.DefaultMachine()
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	return c
}

// machine is one serving stack plus its identity.
type machine struct {
	name    string
	srv     *serve.Server
	metrics *obs.Metrics
}

// deployment is one model's fleet-level state: the desired spec and
// replica count, the compiled model (nil until first placement), and
// the machines currently holding a replica.
type deployment struct {
	spec serve.ModelSpec
	want int
	lm   *serve.LoadedModel
	// replicas are the machine indices holding the model, sorted.
	replicas []int
	// lastUsed is the route sequence number of the model's most recent
	// hop — the LRU clock for on-demand eviction (virtual-time friendly:
	// no wall clock).
	lastUsed int64
}

// Fleet is N machines behind the placement and routing tier.
type Fleet struct {
	cfg      Config
	machines []*machine
	profiles *profcache.Store
	// compiler is the compile-once cache: models compile here (against
	// the uniform machine shape) and fan out to machine registries via
	// Install, sharing one profile store and one LoadedModel.
	compiler *serve.Registry

	mu          sync.Mutex
	deployments map[string]*deployment  // guarded by mu
	graphs      map[string]Graph        // guarded by mu
	placements  []verify.FleetPlacement // guarded by mu; append-only log
	hops        []verify.FleetHop       // guarded by mu; Certify only
	routeSeq    int64                   // guarded by mu
	started     time.Time
}

// New builds and starts a fleet: cfg.Machines serving stacks plus the
// router state. Each machine gets its own metrics registry; the
// router's counters land in cfg.Metrics under fleet.* keys.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:         cfg,
		profiles:    profcache.New(),
		deployments: map[string]*deployment{},
		graphs:      map[string]Graph{},
		started:     time.Now(),
	}
	f.compiler = serve.NewRegistry(cfg.Machine, f.profiles, cfg.Metrics, cfg.Trace, serve.ServingDefaults{
		MaxBatch:          cfg.MaxBatch,
		BatchWindow:       cfg.BatchWindow,
		BatchWindowCycles: cfg.BatchWindowCycles,
		SLOClasses:        cfg.SLOClasses,
	})
	for i := 0; i < cfg.Machines; i++ {
		metrics := obs.NewMetrics()
		srv, err := serve.NewServer(serve.Config{
			Machine:           cfg.Machine,
			QueueDepth:        cfg.QueueDepth,
			Admission:         cfg.Admission,
			Workers:           cfg.Workers,
			MaxBatch:          cfg.MaxBatch,
			BatchWindow:       cfg.BatchWindow,
			BatchWindowCycles: cfg.BatchWindowCycles,
			SLOClasses:        cfg.SLOClasses,
			Profiles:          f.profiles,
			Metrics:           metrics,
			Trace:             cfg.Trace,
			Certify:           cfg.Certify,
		})
		if err != nil {
			for _, m := range f.machines {
				_ = m.srv.Shutdown(context.Background())
			}
			return nil, err
		}
		f.machines = append(f.machines, &machine{
			name:    fmt.Sprintf("m%d", i),
			srv:     srv,
			metrics: metrics,
		})
	}
	cfg.Metrics.Set("fleet.machines", float64(len(f.machines)))
	return f, nil
}

// Size returns the machine count.
func (f *Fleet) Size() int { return len(f.machines) }

// MachineNames returns the machine names in index order.
func (f *Fleet) MachineNames() []string {
	names := make([]string, len(f.machines))
	for i, m := range f.machines {
		names[i] = m.name
	}
	return names
}

// Machine returns one machine's serving stack by index (tests and the
// HTTP layer reach through it read-mostly).
func (f *Fleet) Machine(i int) *serve.Server { return f.machines[i].srv }

// MachineMetrics returns one machine's private metrics registry.
func (f *Fleet) MachineMetrics(i int) *obs.Metrics { return f.machines[i].metrics }

// Metrics returns the router-tier metrics registry.
func (f *Fleet) Metrics() *obs.Metrics { return f.cfg.Metrics }

// Certifying reports whether the fleet records certificates.
func (f *Fleet) Certifying() bool { return f.cfg.Certify }

// machineIndex resolves a machine name to its index, -1 when unknown.
func (f *Fleet) machineIndex(name string) int {
	for i, m := range f.machines {
		if m.name == name {
			return i
		}
	}
	return -1
}

// Shutdown drains every machine. Each machine finishes its in-flight
// work; the router stops accepting once the machines are draining.
func (f *Fleet) Shutdown(ctx context.Context) error {
	var firstErr error
	for _, m := range f.machines {
		if err := m.srv.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Certificate assembles the fleet certificate: machine set, placement
// log, registered graphs, recorded hops, and each machine's schedule
// certificate (when the machines are certifying).
func (f *Fleet) Certificate() verify.FleetCertificate {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := verify.FleetCertificate{
		Placements: append([]verify.FleetPlacement(nil), f.placements...),
		Hops:       append([]verify.FleetHop(nil), f.hops...),
	}
	for _, m := range f.machines {
		c.Machines = append(c.Machines, verify.FleetMachine{
			Name:        m.name,
			GPUChannels: m.srv.Machine().GPUChannels,
			PIMChannels: m.srv.Machine().PIMChannels,
		})
	}
	for _, name := range sortedKeys(f.graphs) {
		c.Graphs = append(c.Graphs, f.graphs[name])
	}
	if f.cfg.Certify {
		c.Schedules = map[string]verify.ScheduleCertificate{}
		for _, m := range f.machines {
			if m.srv.Certifying() {
				c.Schedules[m.name] = m.srv.Certificate()
			}
		}
	}
	return c
}

// Verify checks the fleet certificate — FL-* rules plus every machine's
// SR-* schedule — and returns the violations.
func (f *Fleet) Verify() []verify.Diagnostic {
	diags := verify.Fleet(f.Certificate())
	verify.Record(f.cfg.Metrics, diags)
	return diags
}
