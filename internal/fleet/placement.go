package fleet

import (
	"errors"
	"fmt"
	"sort"

	"pimflow/internal/obs"
	"pimflow/internal/serve"
	"pimflow/internal/verify"
)

// sortedKeys returns the map's keys sorted, for deterministic iteration
// over string-keyed maps.
//
//pimflow:deterministic
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	//lint:ignore LT-MAP-ORDER keys are sorted before the caller iterates them
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DeploymentInfo is one model's fleet-level listing.
type DeploymentInfo struct {
	Name     string       `json:"name"`
	Model    string       `json:"model"`
	Want     int          `json:"replicasWanted"`
	Replicas []string     `json:"replicas"`
	Demand   serve.Demand `json:"demand"`
	Loaded   bool         `json:"loaded"`
}

// Register records a model deployment without compiling or placing it:
// the first request routed to it triggers the on-demand load
// (modelmesh-style lazy placement). replicas <= 0 means one.
func (f *Fleet) Register(spec serve.ModelSpec, replicas int) error {
	if spec.Name == "" {
		spec.Name = spec.Model
	}
	if spec.Name == "" {
		return fmt.Errorf("fleet: empty model spec")
	}
	if replicas <= 0 {
		replicas = 1
	}
	if replicas > len(f.machines) {
		return fmt.Errorf("%w: %d replicas of %q on %d machines", ErrTooManyReplicas, replicas, spec.Name, len(f.machines))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.deployments[spec.Name]; ok {
		return fmt.Errorf("%w: %q", ErrAlreadyDeployed, spec.Name)
	}
	f.deployments[spec.Name] = &deployment{spec: spec, want: replicas}
	f.cfg.Metrics.Set("fleet.models_registered", float64(len(f.deployments)))
	return nil
}

// Deploy registers a model and places its replicas eagerly.
func (f *Fleet) Deploy(spec serve.ModelSpec, replicas int) error {
	if err := f.Register(spec, replicas); err != nil {
		return err
	}
	if spec.Name == "" {
		spec.Name = spec.Model
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ensureLocked(f.deployments[spec.Name], false)
}

// Undeploy removes a model everywhere: registry entries unload, active
// placements flip inactive in the log, and the deployment disappears.
func (f *Fleet) Undeploy(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.deployments[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	for _, mi := range d.replicas {
		f.evictLocked(d, mi)
	}
	delete(f.deployments, name)
	f.cfg.Metrics.Set("fleet.models_registered", float64(len(f.deployments)))
	return nil
}

// Scale adjusts a model's desired replica count. Growth places new
// replicas immediately when the model is loaded; shrink evicts the
// highest-index replicas first.
func (f *Fleet) Scale(name string, replicas int) error {
	if replicas <= 0 {
		replicas = 1
	}
	if replicas > len(f.machines) {
		return fmt.Errorf("%w: %d replicas of %q on %d machines", ErrTooManyReplicas, replicas, name, len(f.machines))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.deployments[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	d.want = replicas
	for len(d.replicas) > replicas {
		f.evictLocked(d, d.replicas[len(d.replicas)-1])
	}
	if d.lm == nil {
		return nil // placed on first use
	}
	return f.ensureLocked(d, false)
}

// Deployments lists the fleet's registered models sorted by name.
func (f *Fleet) Deployments() []DeploymentInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	infos := make([]DeploymentInfo, 0, len(f.deployments))
	for _, name := range sortedKeys(f.deployments) {
		d := f.deployments[name]
		info := DeploymentInfo{Name: name, Model: d.spec.Model, Want: d.want, Loaded: d.lm != nil}
		if d.lm != nil {
			info.Demand = d.lm.Demand
		}
		for _, mi := range d.replicas {
			info.Replicas = append(info.Replicas, f.machines[mi].name)
		}
		infos = append(infos, info)
	}
	return infos
}

// ensureLocked brings a deployment up to its desired replica count:
// compile once (through the compile-cache registry), then bin-pack each
// missing replica onto a machine. evict permits LRU eviction to make
// room — on-demand loads may displace idle models (modelmesh-style),
// eager deploys must not (an explicit Deploy racing other models out
// would make placement order-dependent). Callers hold f.mu.
func (f *Fleet) ensureLocked(d *deployment, evict bool) error {
	if d.lm == nil {
		lm, err := f.compiler.Load(d.spec)
		if errors.Is(err, serve.ErrAlreadyLoaded) {
			// A previous deployment of this name already compiled it; the
			// compile cache keeps it warm across undeploy/redeploy.
			lm, err = f.compiler.Get(d.spec.Name)
		}
		if err != nil {
			return err
		}
		d.lm = lm
	}
	for len(d.replicas) < d.want {
		if err := f.placeLocked(d, evict); err != nil {
			return err
		}
	}
	return nil
}

// placeLocked places one more replica of a loaded deployment: best-fit
// bin-packing over the machines' remaining static capacity, excluding
// machines already holding the model. When nothing fits, evict
// least-recently-used models (lowest machine index first); when even
// eviction cannot make room, overcommit if TimeShare allows, else fail
// with ErrNoCapacity.
func (f *Fleet) placeLocked(d *deployment, evict bool) error {
	exclude := map[int]bool{}
	for _, mi := range d.replicas {
		exclude[mi] = true
	}
	mi := f.bestFitLocked(d.lm.Demand, exclude)
	timeShare := false
	if mi < 0 && evict {
		mi = f.evictForLocked(d, exclude)
	}
	if mi < 0 {
		if !f.cfg.TimeShare {
			return fmt.Errorf("%w: %q needs %d GPU + %d PIM channels and every machine is full",
				ErrNoCapacity, d.spec.Name, d.lm.Demand.GPU, d.lm.Demand.PIM)
		}
		// Overcommit the least-loaded non-excluded machine: models
		// time-share the channel groups through the scheduler, so the
		// static sum may exceed capacity (flagged in the certificate;
		// SR-OVERLAP still proves no instant oversubscribes).
		mi = f.leastLoadedLocked(exclude)
		if mi < 0 {
			return fmt.Errorf("%w: %q has replicas on every machine", ErrNoCapacity, d.spec.Name)
		}
		timeShare = true
	}
	if err := f.machines[mi].srv.Registry().Install(d.lm); err != nil {
		return err
	}
	d.replicas = append(d.replicas, mi)
	sort.Ints(d.replicas)
	f.placements = append(f.placements, verify.FleetPlacement{
		Model:     d.spec.Name,
		Machine:   f.machines[mi].name,
		GPU:       d.lm.Demand.GPU,
		PIM:       d.lm.Demand.PIM,
		Active:    true,
		TimeShare: timeShare,
	})
	f.cfg.Metrics.Inc("fleet.placements")
	f.cfg.Metrics.Inc(obs.LabeledKey("fleet.placements", "machine", f.machines[mi].name))
	return nil
}

// remainingLocked is one machine's static capacity minus its active
// placements' demand (time-shared placements excluded, matching
// FL-CAPACITY).
func (f *Fleet) remainingLocked(mi int) serve.Demand {
	m := f.machines[mi].srv.Machine()
	rem := serve.Demand{GPU: m.GPUChannels, PIM: m.PIMChannels}
	for i := range f.placements {
		p := &f.placements[i]
		if p.Active && !p.TimeShare && p.Machine == f.machines[mi].name {
			rem.GPU -= p.GPU
			rem.PIM -= p.PIM
		}
	}
	return rem
}

// bestFitLocked returns the fitting machine with the least leftover
// capacity after placement (tightest fit packs cold models densely and
// keeps whole machines free for replicas); ties break on the lowest
// index. -1 when nothing fits.
func (f *Fleet) bestFitLocked(d serve.Demand, exclude map[int]bool) int {
	best, bestLeft := -1, 0
	for mi := range f.machines {
		if exclude[mi] {
			continue
		}
		rem := f.remainingLocked(mi)
		if d.GPU > rem.GPU || d.PIM > rem.PIM {
			continue
		}
		left := (rem.GPU - d.GPU) + (rem.PIM - d.PIM)
		if best < 0 || left < bestLeft {
			best, bestLeft = mi, left
		}
	}
	return best
}

// leastLoadedLocked returns the non-excluded machine with the most
// remaining static capacity (ties on lowest index), ignoring fit.
func (f *Fleet) leastLoadedLocked(exclude map[int]bool) int {
	best, bestRem := -1, 0
	for mi := range f.machines {
		if exclude[mi] {
			continue
		}
		rem := f.remainingLocked(mi)
		if r := rem.GPU + rem.PIM; best < 0 || r > bestRem {
			best, bestRem = mi, r
		}
	}
	return best
}

// evictForLocked tries to make room for d on some machine by evicting
// least-recently-used sibling models, modelmesh-style: machines are
// tried in index order; on each, idle siblings are evicted oldest
// lastUsed first (ties on name) until the demand fits. Returns the
// machine index, or -1 when no machine can be cleared.
func (f *Fleet) evictForLocked(d *deployment, exclude map[int]bool) int {
	for mi := range f.machines {
		if exclude[mi] {
			continue
		}
		m := f.machines[mi].srv.Machine()
		if d.lm.Demand.GPU > m.GPUChannels || d.lm.Demand.PIM > m.PIMChannels {
			continue // cannot fit even empty
		}
		// Victims: other deployments holding this machine, oldest first.
		type victim struct {
			dep *deployment
		}
		var victims []victim
		for _, name := range sortedKeys(f.deployments) {
			od := f.deployments[name]
			if od == d {
				continue
			}
			for _, omi := range od.replicas {
				if omi == mi {
					victims = append(victims, victim{dep: od})
					break
				}
			}
		}
		sort.SliceStable(victims, func(i, j int) bool {
			return victims[i].dep.lastUsed < victims[j].dep.lastUsed
		})
		rem := f.remainingLocked(mi)
		need := 0
		for _, v := range victims {
			if d.lm.Demand.GPU <= rem.GPU && d.lm.Demand.PIM <= rem.PIM {
				break
			}
			rem.GPU += v.dep.lm.Demand.GPU
			rem.PIM += v.dep.lm.Demand.PIM
			need++
		}
		if d.lm.Demand.GPU > rem.GPU || d.lm.Demand.PIM > rem.PIM {
			continue // even a cleared machine cannot hold it alongside itself
		}
		for _, v := range victims[:need] {
			f.evictLocked(v.dep, mi)
			f.cfg.Metrics.Inc("fleet.evictions")
		}
		return mi
	}
	return -1
}

// evictLocked removes one replica of a deployment from a machine:
// unload from the machine's registry (in-flight work finishes; the
// compiled model stays warm in the compile cache) and flip the
// placement log entry inactive.
func (f *Fleet) evictLocked(d *deployment, mi int) {
	_ = f.machines[mi].srv.Registry().Unload(d.spec.Name)
	for i := len(d.replicas) - 1; i >= 0; i-- {
		if d.replicas[i] == mi {
			d.replicas = append(d.replicas[:i], d.replicas[i+1:]...)
			break
		}
	}
	name := f.machines[mi].name
	for i := range f.placements {
		p := &f.placements[i]
		if p.Active && p.Model == d.spec.Name && p.Machine == name {
			p.Active = false
			break
		}
	}
}
