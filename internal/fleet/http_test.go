package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"pimflow/internal/fleet"
)

// doJSON issues one request with a JSON body and decodes the JSON reply
// into out (which may be nil for empty replies).
func doJSON(t *testing.T, c *http.Client, method, url string, in, out any) int {
	t.Helper()
	var body bytes.Buffer
	if in != nil {
		if err := json.NewEncoder(&body).Encode(in); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && resp.ContentLength != 0 {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPEndToEnd drives the fleet API the way the CLI smoke does:
// deploy two models over HTTP, register a Sequence graph spanning them,
// infer through the graph, and read the machine listing and metrics.
func TestHTTPEndToEnd(t *testing.T) {
	f, err := fleet.New(fleet.Config{Machines: 2, Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown(context.Background())
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()
	c := ts.Client()

	var health map[string]any
	if code := doJSON(t, c, http.MethodGet, ts.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz: %d %v", code, health)
	}
	if health["machines"] != float64(2) {
		t.Fatalf("healthz machines = %v, want 2", health["machines"])
	}

	// Whole-machine demands force the Sequence across two machines.
	deploy := func(name string, replicas int) {
		body := map[string]any{"model": "toy", "totalChannels": 32, "pimChannels": 16, "replicas": replicas}
		var got map[string]any
		if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/models/"+name, body, &got); code != http.StatusCreated {
			t.Fatalf("deploy %s: %d %v", name, code, got)
		}
	}
	deploy("front", 1)
	deploy("back", 1)

	// Redeploy conflicts; unknown-model infer 404s.
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/models/front",
		map[string]any{"model": "toy"}, nil); code != http.StatusConflict {
		t.Fatalf("redeploy front: %d, want 409", code)
	}
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/models/ghost/infer", nil, nil); code != http.StatusNotFound {
		t.Fatalf("infer ghost: %d, want 404", code)
	}

	var machines []fleet.MachineInfo
	if code := doJSON(t, c, http.MethodGet, ts.URL+"/v1/machines", nil, &machines); code != http.StatusOK {
		t.Fatalf("machines: %d", code)
	}
	if len(machines) != 2 || len(machines[0].Placements) != 1 || len(machines[1].Placements) != 1 {
		t.Fatalf("placements not spread across both machines: %+v", machines)
	}

	g := fleet.Graph{
		Root: "root",
		Nodes: []fleet.GraphNode{{Name: "root", Type: "sequence", Steps: []fleet.GraphStep{
			{Model: "front"}, {Model: "back"},
		}}},
	}
	var regged fleet.Graph
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/graphs/chain", g, &regged); code != http.StatusCreated {
		t.Fatalf("register graph: %d %+v", code, regged)
	}

	var resp fleet.Response
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/graphs/chain/infer", nil, &resp); code != http.StatusOK {
		t.Fatalf("graph infer: %d %+v", code, resp)
	}
	if len(resp.Hops) != 2 || resp.Hops[0].Model != "front" || resp.Hops[1].Model != "back" {
		t.Fatalf("graph hops = %+v, want front then back", resp.Hops)
	}
	if resp.Hops[0].Machine == resp.Hops[1].Machine {
		t.Fatalf("both hops on %s; whole-machine models must split", resp.Hops[0].Machine)
	}
	if want := resp.Hops[0].Resp.LatencyCycles + resp.Hops[1].Resp.LatencyCycles; resp.LatencyCycles != want {
		t.Fatalf("sequence latency %d != hop sum %d", resp.LatencyCycles, want)
	}

	// Per-machine metrics resolve by name; unknown machines 404.
	if code := doJSON(t, c, http.MethodGet, ts.URL+"/v1/machines/m0/metrics", nil, nil); code != http.StatusOK {
		t.Fatalf("machine metrics: %d", code)
	}
	if code := doJSON(t, c, http.MethodGet, ts.URL+"/v1/machines/m9/metrics", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown machine metrics: %d, want 404", code)
	}

	// Scale past the fleet is a 4xx, not a crash; undeploy then 404s.
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/models/front/scale",
		map[string]int{"replicas": 3}, nil); code < 400 || code >= 500 {
		t.Fatalf("overscale: %d, want 4xx", code)
	}
	if code := doJSON(t, c, http.MethodDelete, ts.URL+"/v1/models/back", nil, nil); code != http.StatusNoContent {
		t.Fatalf("undeploy back: %d", code)
	}
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/models/back/infer", nil, nil); code != http.StatusNotFound {
		t.Fatalf("infer undeployed back: %d, want 404", code)
	}

	if diags := f.Verify(); len(diags) > 0 {
		t.Fatalf("fleet certificate violations: %v", diags)
	}
}

// TestHTTPLazyDeploy registers without placing; the first infer through
// the router triggers the on-demand load.
func TestHTTPLazyDeploy(t *testing.T) {
	f, err := fleet.New(fleet.Config{Machines: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown(context.Background())
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()
	c := ts.Client()

	body := map[string]any{"model": "toy", "totalChannels": 16, "pimChannels": 8, "lazy": true}
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/models/cold", body, nil); code != http.StatusCreated {
		t.Fatalf("lazy deploy: %d", code)
	}
	var ds []fleet.DeploymentInfo
	if code := doJSON(t, c, http.MethodGet, ts.URL+"/v1/models", nil, &ds); code != http.StatusOK {
		t.Fatalf("models: %d", code)
	}
	if len(ds) != 1 || ds[0].Loaded {
		t.Fatalf("lazy model listed as loaded: %+v", ds)
	}
	var resp fleet.Response
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/models/cold/infer", nil, &resp); code != http.StatusOK {
		t.Fatalf("lazy infer: %d %+v", code, resp)
	}
	if n := f.Metrics().Counter("fleet.on_demand_loads"); n < 1 {
		t.Fatalf("on_demand_loads = %d, want >= 1", n)
	}
}
