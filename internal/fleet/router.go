package fleet

import (
	"context"
	"fmt"

	"pimflow/internal/obs"
	"pimflow/internal/serve"
	"pimflow/internal/verify"
)

// Request is one routed inference: a deployed model by name, or a
// registered inference graph (Graph set, or Model naming a graph).
type Request struct {
	// Model names a deployed model — or a registered graph, which routes
	// like Graph.
	Model string `json:"model,omitempty"`
	// Graph names a registered inference graph to traverse.
	Graph string `json:"graph,omitempty"`
	// Cond is the Switch-node routing condition (kserve matches trigger
	// conditions against request payloads; here the condition travels
	// explicitly).
	Cond string `json:"cond,omitempty"`
	// DeadlineCycles applies serve.InferRequest's virtual deadline to
	// every hop.
	DeadlineCycles int64 `json:"deadlineCycles,omitempty"`
}

// Hop is one model invocation of a routed request.
type Hop struct {
	Graph   string               `json:"graph,omitempty"`
	Node    string               `json:"node,omitempty"`
	Model   string               `json:"model"`
	Machine string               `json:"machine"`
	Resp    *serve.InferResponse `json:"resp"`
}

// Response is one routed request's outcome: the virtual latency of the
// whole traversal (Sequence hops add, Ensemble hops join on the
// maximum) and the per-hop detail.
type Response struct {
	Route         int64  `json:"route"`
	Graph         string `json:"graph,omitempty"`
	Model         string `json:"model,omitempty"`
	LatencyCycles int64  `json:"latencyCycles"`
	Hops          []Hop  `json:"hops"`
}

// nextRoute mints a route id.
func (f *Fleet) nextRoute() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.routeSeq++
	return f.routeSeq
}

// resolveHop picks the deployment and replica machine for one hop:
// on-demand placement when the model is registered but not loaded
// (modelmesh-style), then join-the-shortest-queue over the live
// replicas — occupancy is the machine's in-flight lease count, ties
// break on the lowest machine index, so a single-replica model always
// lands on its one machine and an idle fleet always picks the lowest
// index (the property behind replica-monotone tail latency).
func (f *Fleet) resolveHop(route int64, model string) (*deployment, int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.deployments[model]
	if !ok {
		return nil, -1, fmt.Errorf("%w: %q", ErrUnknownModel, model)
	}
	if len(d.replicas) == 0 {
		if err := f.ensureLocked(d, true); err != nil {
			return nil, -1, err
		}
		f.cfg.Metrics.Inc("fleet.on_demand_loads")
	}
	d.lastUsed = route
	best, bestLoad := -1, 0
	for _, mi := range d.replicas {
		load := f.machines[mi].srv.Scheduler().InFlight()
		if best < 0 || load < bestLoad {
			best, bestLoad = mi, load
		}
	}
	return d, best, nil
}

// recordHop appends one completed hop to the fleet certificate
// (Certify only). after is the certificate index of the gating hop, -1
// when the hop started at the request's own arrival.
func (f *Fleet) recordHop(h verify.FleetHop) int {
	if !f.cfg.Certify {
		return -1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hops = append(f.hops, h)
	return len(f.hops) - 1
}

// hopLive runs one live-path hop: resolve the replica, invoke the
// machine synchronously, and record the hop. Live-path hops use
// frontier-stamped arrivals (each machine stamps its own virtual
// frontier), so cross-machine gating is not pinned and recorded hops
// carry After -1 — the deterministic pinned-arrival story is Replay's.
func (f *Fleet) hopLive(ctx context.Context, route int64, graphName, nodeName, model string, deadline int64, resp *Response) (*serve.InferResponse, error) {
	d, mi, err := f.resolveHop(route, model)
	if err != nil {
		return nil, err
	}
	m := f.machines[mi]
	endSpan := f.cfg.Trace.Span("fleet-router", model+"@"+m.name, "fleet.hop",
		map[string]any{"route": route, "graph": graphName, "node": nodeName, "machine": m.name})
	r, err := m.srv.Infer(ctx, serve.InferRequest{Model: d.spec.Name, DeadlineCycles: deadline})
	if err != nil {
		f.cfg.Metrics.Inc("fleet.hop_errors")
		endSpan(map[string]any{"error": err.Error()})
		return nil, err
	}
	endSpan(map[string]any{"latencyCycles": r.LatencyCycles, "batch": r.BatchSize})
	f.cfg.Metrics.Inc("fleet.hops")
	f.cfg.Metrics.Inc(obs.LabeledKey("fleet.hops", "machine", m.name))
	f.cfg.Metrics.Observe("fleet.hop_latency_cycles", float64(r.LatencyCycles))
	f.recordHop(verify.FleetHop{
		Route: route, Index: len(resp.Hops), Graph: graphName, Node: nodeName,
		Model: model, Machine: m.name, Arrival: r.ArrivalCycle, End: r.EndCycle, After: -1,
	})
	resp.Hops = append(resp.Hops, Hop{Graph: graphName, Node: nodeName, Model: model, Machine: m.name, Resp: r})
	return r, nil
}

// evalStepLive runs one graph step: a nested node or a model hop,
// returning the step's virtual latency.
func (f *Fleet) evalStepLive(ctx context.Context, route int64, g Graph, s GraphStep, cond string, deadline int64, resp *Response) (int64, error) {
	if s.Node != "" {
		n, err := graphNode(g, s.Node)
		if err != nil {
			return 0, err
		}
		return f.evalNodeLive(ctx, route, g, n, cond, deadline, resp)
	}
	r, err := f.hopLive(ctx, route, g.Name, "", s.Model, deadline, resp)
	if err != nil {
		return 0, err
	}
	return r.LatencyCycles, nil
}

// evalNodeLive interprets one graph node on the live path. Sequence
// latencies add (each hop consumes its predecessor's output), Ensemble
// latencies join on the maximum (branches run concurrently in virtual
// time), Splitter and Switch take their one chosen branch.
func (f *Fleet) evalNodeLive(ctx context.Context, route int64, g Graph, n GraphNode, cond string, deadline int64, resp *Response) (int64, error) {
	switch n.Type {
	case "sequence":
		var total int64
		for _, s := range n.Steps {
			lat, err := f.evalStepLive(ctx, route, g, s, cond, deadline, resp)
			if err != nil {
				return 0, err
			}
			total += lat
		}
		return total, nil
	case "ensemble":
		var join int64
		for _, s := range n.Steps {
			lat, err := f.evalStepLive(ctx, route, g, s, cond, deadline, resp)
			if err != nil {
				return 0, err
			}
			if lat > join {
				join = lat
			}
		}
		return join, nil
	case "splitter":
		return f.evalStepLive(ctx, route, g, pickSplit(f.cfg.Seed, route, n.Steps), cond, deadline, resp)
	case "switch":
		s, err := pickSwitch(cond, n.Steps)
		if err != nil {
			return 0, err
		}
		return f.evalStepLive(ctx, route, g, s, cond, deadline, resp)
	}
	return 0, fmt.Errorf("fleet: graph %q node %q has unknown type %q", g.Name, n.Name, n.Type)
}

// Infer routes one request through the fleet synchronously: a plain
// model request becomes one hop on a JSQ-chosen replica; a graph
// request traverses its nodes hop by hop. This is the concurrent live
// path (HTTP); the deterministic virtual-time story is Replay.
func (f *Fleet) Infer(ctx context.Context, req Request) (*Response, error) {
	name := req.Graph
	if name == "" {
		name = req.Model
	}
	route := f.nextRoute()
	f.cfg.Metrics.Inc("fleet.requests")
	endSpan := f.cfg.Trace.Span("fleet-router", name, "fleet.route", map[string]any{"route": route})

	f.mu.Lock()
	g, isGraph := f.graphs[name]
	f.mu.Unlock()
	if req.Graph != "" && !isGraph {
		f.cfg.Metrics.Inc("fleet.route_errors")
		endSpan(map[string]any{"error": "unknown graph"})
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, req.Graph)
	}

	resp := &Response{Route: route, Model: req.Model}
	var err error
	if isGraph {
		resp.Graph = name
		resp.Model = ""
		var root GraphNode
		if root, err = graphNode(g, g.Root); err == nil {
			resp.LatencyCycles, err = f.evalNodeLive(ctx, route, g, root, req.Cond, req.DeadlineCycles, resp)
		}
	} else {
		var r *serve.InferResponse
		if r, err = f.hopLive(ctx, route, "", "", name, req.DeadlineCycles, resp); err == nil {
			resp.LatencyCycles = r.LatencyCycles
		}
	}
	if err != nil {
		f.cfg.Metrics.Inc("fleet.route_errors")
		endSpan(map[string]any{"error": err.Error()})
		return nil, err
	}
	f.cfg.Metrics.Observe("fleet.route_latency_cycles", float64(resp.LatencyCycles))
	endSpan(map[string]any{"latencyCycles": resp.LatencyCycles, "hops": len(resp.Hops)})
	return resp, nil
}
