package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"pimflow/internal/serve"
	"pimflow/internal/verify"
)

// deployBody is the JSON body of POST /v1/models/{name}: a serve
// ModelSpec plus the fleet-level replica count and lazy flag.
type deployBody struct {
	serve.ModelSpec
	// Replicas is the desired replica count (distinct machines; <=0: 1).
	Replicas int `json:"replicas,omitempty"`
	// Lazy registers without placing: the first routed request triggers
	// the on-demand load.
	Lazy bool `json:"lazy,omitempty"`
}

// inferBody is the JSON body of the infer endpoints.
type inferBody struct {
	// Cond is the Switch-node routing condition.
	Cond string `json:"cond,omitempty"`
	// DeadlineCycles applies a virtual-time deadline to every hop.
	DeadlineCycles int64 `json:"deadlineCycles,omitempty"`
	// TimeoutMillis bounds wall-clock residence via a context deadline.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

// MachineInfo is one machine's listing in GET /v1/machines.
type MachineInfo struct {
	Name        string                  `json:"name"`
	GPUChannels int                     `json:"gpuChannels"`
	PIMChannels int                     `json:"pimChannels"`
	Draining    bool                    `json:"draining"`
	Placements  []verify.FleetPlacement `json:"placements,omitempty"`
}

// Handler returns the fleet's HTTP API:
//
//	GET    /healthz                   fleet liveness + per-machine drain state
//	GET    /metrics                   router-tier metrics (text; JSON via Accept)
//	GET    /metrics.json              the same registry as JSON
//	GET    /v1/machines               machine list with active placements
//	GET    /v1/machines/{name}/metrics  one machine's serving metrics
//	GET    /v1/models                 fleet deployments
//	POST   /v1/models/{name}          deploy (deployBody; lazy registers only)
//	DELETE /v1/models/{name}          undeploy everywhere
//	POST   /v1/models/{name}/scale    set the replica count ({"replicas": N})
//	POST   /v1/models/{name}/infer    route one inference (inferBody)
//	GET    /v1/graphs                 registered inference graphs
//	POST   /v1/graphs/{name}          register a graph (verify.FleetGraph body)
//	POST   /v1/graphs/{name}/infer    route one request through the graph
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", f.handleHealth)
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	mux.HandleFunc("GET /metrics.json", f.handleMetricsJSON)
	mux.HandleFunc("GET /v1/machines", f.handleMachines)
	mux.HandleFunc("GET /v1/machines/{name}/metrics", f.handleMachineMetrics)
	mux.HandleFunc("GET /v1/models", f.handleModels)
	mux.HandleFunc("POST /v1/models/{name}", f.handleDeploy)
	mux.HandleFunc("DELETE /v1/models/{name}", f.handleUndeploy)
	mux.HandleFunc("POST /v1/models/{name}/scale", f.handleScale)
	mux.HandleFunc("POST /v1/models/{name}/infer", f.handleInferModel)
	mux.HandleFunc("GET /v1/graphs", f.handleGraphs)
	mux.HandleFunc("POST /v1/graphs/{name}", f.handleRegisterGraph)
	mux.HandleFunc("POST /v1/graphs/{name}/infer", f.handleInferGraph)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// statusOf maps fleet- and machine-tier errors onto HTTP status codes.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrUnknownModel), errors.Is(err, ErrUnknownGraph),
		errors.Is(err, serve.ErrNotLoaded):
		return http.StatusNotFound
	case errors.Is(err, ErrAlreadyDeployed), errors.Is(err, serve.ErrAlreadyLoaded):
		return http.StatusConflict
	case errors.Is(err, ErrNoCapacity):
		return http.StatusInsufficientStorage
	case errors.Is(err, ErrNoSwitchMatch), errors.Is(err, ErrTooManyReplicas):
		return http.StatusBadRequest
	case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrDeadlineViolation), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusOf(err), errorBody{Error: err.Error()})
}

func decodeBody(r *http.Request, v any) error {
	defer r.Body.Close()
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("fleet: bad request body: %w", err)
	}
	return nil
}

func (f *Fleet) handleHealth(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	draining := 0
	for _, m := range f.machines {
		if m.srv.Draining() {
			draining++
		}
	}
	if draining > 0 {
		status, code = "draining", http.StatusServiceUnavailable
	}
	f.mu.Lock()
	models, graphs := len(f.deployments), len(f.graphs)
	f.mu.Unlock()
	writeJSON(w, code, map[string]any{
		"status":        status,
		"machines":      f.Size(),
		"draining":      draining,
		"models":        models,
		"graphs":        graphs,
		"uptimeSeconds": time.Since(f.started).Seconds(),
	})
}

func (f *Fleet) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		f.handleMetricsJSON(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = f.cfg.Metrics.WriteText(w)
}

func (f *Fleet) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = f.cfg.Metrics.WriteJSON(w)
}

func (f *Fleet) handleMachines(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	byMachine := map[string][]verify.FleetPlacement{}
	for _, p := range f.placements {
		if p.Active {
			byMachine[p.Machine] = append(byMachine[p.Machine], p)
		}
	}
	f.mu.Unlock()
	var infos []MachineInfo
	for _, m := range f.machines {
		infos = append(infos, MachineInfo{
			Name:        m.name,
			GPUChannels: m.srv.Machine().GPUChannels,
			PIMChannels: m.srv.Machine().PIMChannels,
			Draining:    m.srv.Draining(),
			Placements:  byMachine[m.name],
		})
	}
	writeJSON(w, http.StatusOK, infos)
}

func (f *Fleet) handleMachineMetrics(w http.ResponseWriter, r *http.Request) {
	mi := f.machineIndex(r.PathValue("name"))
	if mi < 0 {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown machine " + r.PathValue("name")})
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		w.Header().Set("Content-Type", "application/json")
		_ = f.machines[mi].metrics.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = f.machines[mi].metrics.WriteText(w)
}

func (f *Fleet) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.Deployments())
}

func (f *Fleet) handleDeploy(w http.ResponseWriter, r *http.Request) {
	var body deployBody
	if err := decodeBody(r, &body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	spec := body.ModelSpec
	spec.Name = r.PathValue("name")
	var err error
	if body.Lazy {
		err = f.Register(spec, body.Replicas)
	} else {
		err = f.Deploy(spec, body.Replicas)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	for _, d := range f.Deployments() {
		if d.Name == spec.Name {
			writeJSON(w, http.StatusCreated, d)
			return
		}
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": spec.Name})
}

func (f *Fleet) handleUndeploy(w http.ResponseWriter, r *http.Request) {
	if err := f.Undeploy(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (f *Fleet) handleScale(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Replicas int `json:"replicas"`
	}
	if err := decodeBody(r, &body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if err := f.Scale(r.PathValue("name"), body.Replicas); err != nil {
		writeError(w, err)
		return
	}
	for _, d := range f.Deployments() {
		if d.Name == r.PathValue("name") {
			writeJSON(w, http.StatusOK, d)
			return
		}
	}
	w.WriteHeader(http.StatusOK)
}

func (f *Fleet) infer(w http.ResponseWriter, r *http.Request, req Request) {
	var body inferBody
	if err := decodeBody(r, &body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	req.Cond = body.Cond
	req.DeadlineCycles = body.DeadlineCycles
	ctx := r.Context()
	if body.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(body.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}
	resp, err := f.Infer(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (f *Fleet) handleInferModel(w http.ResponseWriter, r *http.Request) {
	f.infer(w, r, Request{Model: r.PathValue("name")})
}

func (f *Fleet) handleGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.Graphs())
}

func (f *Fleet) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	var g Graph
	if err := decodeBody(r, &g); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	g.Name = r.PathValue("name")
	if err := f.RegisterGraph(g); err != nil {
		if errors.Is(err, ErrUnknownModel) {
			writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, g)
}

func (f *Fleet) handleInferGraph(w http.ResponseWriter, r *http.Request) {
	f.infer(w, r, Request{Graph: r.PathValue("name")})
}
