package fleet

import (
	"fmt"

	"pimflow/internal/verify"
)

// RegisterGraph validates and registers an inference graph. The static
// FL-NODE / FL-ACYCLIC rules gate registration the same way GR-*/TR-*
// gate a model load: a malformed graph never becomes routable. Every
// model a step references must already be deployed (or registered for
// on-demand load).
func (f *Fleet) RegisterGraph(g Graph) error {
	if g.Name == "" {
		return fmt.Errorf("fleet: graph with empty name")
	}
	if diags := verify.Fleet(verify.FleetCertificate{
		Machines: []verify.FleetMachine{{Name: "static-check", GPUChannels: 1}},
		Graphs:   []verify.FleetGraph{g},
	}); len(diags) > 0 {
		return fmt.Errorf("fleet: graph %q failed verification: %w", g.Name, verify.AsError(diags))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.graphs[g.Name]; ok {
		return fmt.Errorf("fleet: graph %q already registered", g.Name)
	}
	if _, ok := f.deployments[g.Name]; ok {
		return fmt.Errorf("fleet: graph %q collides with a deployed model", g.Name)
	}
	for _, n := range g.Nodes {
		for _, s := range n.Steps {
			if s.Model == "" {
				continue
			}
			if _, ok := f.deployments[s.Model]; !ok {
				return fmt.Errorf("fleet: graph %q step references %w: %q", g.Name, ErrUnknownModel, s.Model)
			}
		}
	}
	f.graphs[g.Name] = g
	f.cfg.Metrics.Set("fleet.graphs_registered", float64(len(f.graphs)))
	return nil
}

// Graphs lists the registered graphs sorted by name.
func (f *Fleet) Graphs() []Graph {
	f.mu.Lock()
	defer f.mu.Unlock()
	gs := make([]Graph, 0, len(f.graphs))
	for _, name := range sortedKeys(f.graphs) {
		gs = append(gs, f.graphs[name])
	}
	return gs
}

// graphNode resolves a node by name within a graph (registration
// guarantees existence for validated references).
func graphNode(g Graph, name string) (GraphNode, error) {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n, nil
		}
	}
	return GraphNode{}, fmt.Errorf("fleet: graph %q has no node %q", g.Name, name)
}

// splitmix64 is the standard SplitMix64 finalizer: a statistically
// strong, allocation-free hash for the Splitter's weighted pick.
// Deterministic by construction — the replay's route sequence plus the
// fleet seed fully determine every split decision.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pickSplit chooses a splitter step by deterministic weighted hash of
// (fleet seed, route id): the same seed and route sequence always take
// the same branch, and branch frequencies converge to the weight
// ratios.
func pickSplit(seed, route int64, steps []GraphStep) GraphStep {
	total := 0
	for _, s := range steps {
		total += s.Weight
	}
	h := splitmix64(uint64(seed)<<32 ^ uint64(route))
	pick := int(h % uint64(total))
	for _, s := range steps {
		pick -= s.Weight
		if pick < 0 {
			return s
		}
	}
	return steps[len(steps)-1]
}

// pickSwitch chooses the first switch step whose condition equals the
// request's condition, falling back to the default (conditionless)
// step. kserve's Switch matches trigger conditions the same way: first
// match wins, one optional default.
func pickSwitch(cond string, steps []GraphStep) (GraphStep, error) {
	var dflt *GraphStep
	for i, s := range steps {
		if s.Condition == "" {
			if dflt == nil {
				dflt = &steps[i]
			}
			continue
		}
		if s.Condition == cond {
			return s, nil
		}
	}
	if dflt != nil {
		return *dflt, nil
	}
	return GraphStep{}, fmt.Errorf("%w: %q", ErrNoSwitchMatch, cond)
}
