package fleet

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"pimflow/internal/load"
	"pimflow/internal/obs"
	"pimflow/internal/serve"
	"pimflow/internal/verify"
)

// Scenario is one reproducible fleet workload: the embedded
// load.Scenario drives the trace (its Models are the traffic draw — an
// entry may name a registered Graph instead of a model), Backends are
// models deployed for graph hops but absent from the draw, Replicas
// overrides per-model replica counts, and Machines sizes the fleet.
type Scenario struct {
	load.Scenario
	// Machines is the fleet size (default 1 — the configuration that is
	// operation-for-operation identical to load.Replay on one server).
	Machines int `json:"machines,omitempty"`
	// Replicas maps model name to desired replica count (default 1).
	Replicas map[string]int `json:"replicas,omitempty"`
	// Backends are deployed models that receive graph hops only.
	Backends []load.ModelLoad `json:"backends,omitempty"`
	// Graphs are registered before the replay; a traffic entry naming
	// one routes every trace request for it through the graph.
	Graphs []Graph `json:"graphs,omitempty"`
	// Certify records per-machine SR-* certificates plus the FL-* fleet
	// certificate; the replay fails unless both verify clean.
	Certify bool `json:"certify,omitempty"`
	// TimeShare forwards Config.TimeShare (overcommitted placement).
	TimeShare bool `json:"timeShare,omitempty"`
}

func (s Scenario) withDefaults() Scenario {
	if s.Machines <= 0 {
		s.Machines = 1
	}
	if s.QueueDepth <= 0 {
		s.QueueDepth = 64
	}
	if s.Admission == "" {
		s.Admission = "shed-oldest"
	}
	return s
}

// NewScenarioFleet builds a fleet for the scenario: machines from the
// embedded serve knobs, every non-graph traffic model plus every
// backend deployed at its replica count, every graph registered.
func NewScenarioFleet(sc Scenario, metrics *obs.Metrics, trace *obs.Trace) (*Fleet, error) {
	sc = sc.withDefaults()
	adm, err := serve.ParseAdmissionPolicy(sc.Admission)
	if err != nil {
		return nil, err
	}
	f, err := New(Config{
		Machines:   sc.Machines,
		QueueDepth: sc.QueueDepth,
		Admission:  adm,
		Metrics:    metrics,
		Trace:      trace,
		Certify:    sc.Certify,
		Seed:       sc.Seed,
		TimeShare:  sc.TimeShare,
	})
	if err != nil {
		return nil, err
	}
	graphNames := map[string]bool{}
	for _, g := range sc.Graphs {
		graphNames[g.Name] = true
	}
	deploy := func(ms []load.ModelLoad) error {
		for _, m := range ms {
			if graphNames[m.Name] {
				continue // a traffic entry routing to a graph, not a model
			}
			spec := serve.ModelSpec{
				Name: m.Name, Model: m.Model, Policy: m.Policy,
				TotalChannels: m.TotalChannels, PIMChannels: m.PIMChannels,
				MaxBatch: m.MaxBatch, BatchWindowCycles: m.WindowCycles, SLO: m.SLO,
			}
			if err := f.Deploy(spec, sc.Replicas[m.Name]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := deploy(sc.Models); err == nil {
		err = deploy(sc.Backends)
	}
	if err != nil {
		_ = f.Shutdown(context.Background())
		return nil, err
	}
	for _, g := range sc.Graphs {
		if err := f.RegisterGraph(g); err != nil {
			_ = f.Shutdown(context.Background())
			return nil, err
		}
	}
	return f, nil
}

// fleetPending is one admitted, not-yet-flushed hop in a machine's
// virtual queue (load.Replay's pendingReq plus routing context).
type fleetPending struct {
	cycle    int64
	service  int64
	deadline int64
	shed     bool
	// exec is nil for a plain trace request; ens points at the joining
	// ensemble frame when this hop is one of its branches.
	exec  *routeExec
	ens   *execFrame
	graph string
	node  string
	model string
	after int // certificate index of the gating hop, -1 when ungated
}

// fleetBatch is one model's open batch on one machine.
type fleetBatch struct {
	items      []*fleetPending
	flushCycle int64 // 0: flush immediately (no virtual window)
}

func fleetHeadCycle(vb *fleetBatch) int64 {
	if len(vb.items) == 0 {
		return -1
	}
	return vb.items[0].cycle
}

// cycleHeap is a min-heap of in-service completion cycles (one per
// machine), mirroring load.Replay's occupancy accounting.
type cycleHeap []int64

func (h cycleHeap) Len() int           { return len(h) }
func (h cycleHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h cycleHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *cycleHeap) Push(x any)        { *h = append(*h, x.(int64)) }

func (h *cycleHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// routeExec is one in-flight graph traversal in the replay.
type routeExec struct {
	route   int64
	graph   Graph
	cond    string
	arrival int64
	frames  []*execFrame
	// lastCert is the certificate index of the hop gating the next one
	// (-1 at the root: the first hop starts at the trace arrival).
	lastCert  int
	hopCount  int
	lastBatch int
	lastClass string
	sloMiss   bool
	stages    serve.StageCycles
	failed    bool
}

// execFrame is one graph-node activation on a route's stack.
type execFrame struct {
	node GraphNode
	idx  int // sequence: next step
	// Ensemble join state: branches outstanding, the join cycle (max
	// branch end), and the certificate index of the branch that set it.
	remaining int
	maxEnd    int64
	maxCert   int
}

// hopEvent resumes a route at a hop-completion (or ensemble-join)
// cycle. seq breaks cycle ties in creation order, so the event schedule
// is a pure function of the trace.
type hopEvent struct {
	cycle int64
	seq   int64
	exec  *routeExec
}

type eventHeap []hopEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(hopEvent)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// machineState is one machine's replay-side virtual queue: the open
// batches and the in-service completion frontier, exactly load.Replay's
// state for that machine's server.
type machineState struct {
	idx      int
	srv      *serve.Server
	open     map[string]*fleetBatch
	inFlight cycleHeap
}

func (ms *machineState) prune(now int64) {
	for len(ms.inFlight) > 0 && ms.inFlight[0] <= now {
		heap.Pop(&ms.inFlight)
	}
}

func (ms *machineState) occupancy() int {
	n := len(ms.inFlight)
	//lint:ignore LT-MAP-ORDER pure count; the sum is order-insensitive
	for _, vb := range ms.open {
		for _, p := range vb.items {
			if !p.shed {
				n++
			}
		}
	}
	return n
}

// openInOrder lists the machine's open unshed hops oldest first (the
// candidate order serve.PickShedVictim expects), models visited sorted
// and the sort stable — load.Replay's tie discipline.
func (ms *machineState) openInOrder() []*fleetPending {
	var ps []*fleetPending
	for _, m := range sortedKeys(ms.open) {
		for _, p := range ms.open[m].items {
			if !p.shed {
				ps = append(ps, p)
			}
		}
	}
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].cycle < ps[j].cycle })
	return ps
}

// modelInfo is the per-model shed-prediction and batching policy data
// (identical on every machine: replicas share one compiled model).
type modelInfo struct {
	service  int64
	deadline int64
	maxBatch int
	window   int64
}

// replayer is the single-goroutine deterministic fleet replay.
type replayer struct {
	f        *Fleet
	sc       Scenario
	shed     bool
	rep      *load.Report
	stats    *load.Collector
	machines []*machineState
	info     map[string]*modelInfo
	events   eventHeap
	eventSeq int64
}

// Replay drives the trace through the fleet deterministically on one
// goroutine: per-machine admission and continuous batching mirror
// load.Replay operation for operation (a 1-machine fleet produces an
// identical report, modulo wall-clock fields), and graph traversals
// interleave through a (cycle, seq)-ordered event heap — a Sequence
// hop's arrival is pinned to its predecessor's completion cycle, an
// Ensemble joins at its slowest branch, so cross-machine latency lives
// on the one shared virtual timeline. Identical scenario, identical
// report.
//
//pimflow:deterministic
func Replay(f *Fleet, sc Scenario, reqs []load.Request) (*load.Report, error) {
	sc = sc.withDefaults()
	shed := sc.Admission == "shed-oldest" || sc.Admission == "shed"
	if !shed && sc.Admission != "reject" {
		return nil, fmt.Errorf("fleet: replay admission %q (open-loop replay supports reject and shed-oldest)", sc.Admission)
	}
	if f.Size() != sc.Machines {
		return nil, fmt.Errorf("fleet: scenario wants %d machines, fleet has %d", sc.Machines, f.Size())
	}
	x := &replayer{
		f:     f,
		sc:    sc,
		shed:  shed,
		rep:   &load.Report{Scenario: sc.Name, Requests: len(reqs), Classes: map[string]load.ClassStats{}},
		stats: load.NewCollector(sc.Scenario, len(reqs)),
		info:  map[string]*modelInfo{},
	}
	for i := 0; i < f.Size(); i++ {
		x.machines = append(x.machines, &machineState{
			idx:  i,
			srv:  f.Machine(i),
			open: map[string]*fleetBatch{},
		})
	}
	started := time.Now()

	ti := 0
	for ti < len(reqs) || x.events.Len() > 0 {
		if x.events.Len() > 0 && (ti >= len(reqs) || x.events[0].cycle <= reqs[ti].Cycle) {
			ev := heap.Pop(&x.events).(hopEvent)
			if err := x.advance(ev.exec, ev.cycle); err != nil {
				return nil, err
			}
			continue
		}
		r := reqs[ti]
		ti++
		if err := x.admitTrace(r); err != nil {
			return nil, err
		}
	}
	if err := x.drain(); err != nil {
		return nil, err
	}

	x.rep.WallSeconds = time.Since(started).Seconds()
	x.stats.Finish(x.rep)
	if f.Certifying() {
		cert := f.Certificate()
		if diags := verify.Fleet(cert); len(diags) > 0 {
			return nil, fmt.Errorf("fleet: certificate (%d machines, %d hops): %w",
				len(cert.Machines), len(cert.Hops), verify.AsError(diags))
		}
		x.rep.Certified = true
		for _, name := range sortedKeys(cert.Schedules) {
			x.rep.CertifiedLeases += len(cert.Schedules[name].Leases)
		}
	}
	return x.rep, nil
}

// Run is the one-call fleet harness: build the fleet, generate the
// trace, replay it, shut the fleet down.
func Run(sc Scenario) (*load.Report, error) {
	sc = sc.withDefaults()
	f, err := NewScenarioFleet(sc, nil, nil)
	if err != nil {
		return nil, err
	}
	defer f.Shutdown(context.Background())
	reqs, err := load.Generate(sc.Scenario)
	if err != nil {
		return nil, err
	}
	return Replay(f, sc, reqs)
}

// admitTrace routes one trace entry: a graph name starts a traversal,
// a model name is a single pinned hop.
func (x *replayer) admitTrace(r load.Request) error {
	x.f.mu.Lock()
	g, isGraph := x.f.graphs[r.Model]
	x.f.mu.Unlock()
	route := x.f.nextRoute()
	if !isGraph {
		return x.issueHop(nil, nil, route, "", "", r.Model, r.Cycle, -1)
	}
	root, err := graphNode(g, g.Root)
	if err != nil {
		return err
	}
	exec := &routeExec{route: route, graph: g, arrival: r.Cycle, lastCert: -1,
		frames: []*execFrame{{node: root}}}
	return x.advance(exec, r.Cycle)
}

// advance runs a route's interpreter at virtual cycle t until it issues
// hop(s) or completes. Sequence frames issue their next step; entering
// an Ensemble issues every branch at once (branches run concurrently in
// virtual time and join at the slowest end); Splitter and Switch
// resolve to their one chosen step and vanish from the stack.
func (x *replayer) advance(exec *routeExec, t int64) error {
	for {
		if exec.failed {
			return nil
		}
		if len(exec.frames) == 0 {
			x.finishExec(exec, t)
			return nil
		}
		fr := exec.frames[len(exec.frames)-1]
		switch fr.node.Type {
		case "sequence":
			if fr.idx >= len(fr.node.Steps) {
				exec.frames = exec.frames[:len(exec.frames)-1]
				continue
			}
			s := fr.node.Steps[fr.idx]
			fr.idx++
			if s.Node != "" {
				n, err := graphNode(exec.graph, s.Node)
				if err != nil {
					return err
				}
				exec.frames = append(exec.frames, &execFrame{node: n})
				continue
			}
			return x.issueHop(exec, nil, exec.route, exec.graph.Name, fr.node.Name, s.Model, t, exec.lastCert)
		case "ensemble":
			// FL-NODE restricts ensemble steps to models, so every branch
			// is one hop and the join state fits in the frame.
			fr.remaining = len(fr.node.Steps)
			fr.maxEnd = -1
			fr.maxCert = -1
			gate := exec.lastCert
			for _, s := range fr.node.Steps {
				if err := x.issueHop(exec, fr, exec.route, exec.graph.Name, fr.node.Name, s.Model, t, gate); err != nil {
					return err
				}
			}
			return nil
		case "splitter":
			s := pickSplit(x.f.cfg.Seed, exec.route, fr.node.Steps)
			exec.frames = exec.frames[:len(exec.frames)-1]
			if s.Node != "" {
				n, err := graphNode(exec.graph, s.Node)
				if err != nil {
					return err
				}
				exec.frames = append(exec.frames, &execFrame{node: n})
				continue
			}
			return x.issueHop(exec, nil, exec.route, exec.graph.Name, fr.node.Name, s.Model, t, exec.lastCert)
		case "switch":
			s, err := pickSwitch(exec.cond, fr.node.Steps)
			if err != nil {
				// No matching step: the route fails (counted once).
				exec.failed = true
				x.rep.Errors++
				return nil
			}
			exec.frames = exec.frames[:len(exec.frames)-1]
			if s.Node != "" {
				n, nerr := graphNode(exec.graph, s.Node)
				if nerr != nil {
					return nerr
				}
				exec.frames = append(exec.frames, &execFrame{node: n})
				continue
			}
			return x.issueHop(exec, nil, exec.route, exec.graph.Name, fr.node.Name, s.Model, t, exec.lastCert)
		default:
			return fmt.Errorf("fleet: graph %q node %q has unknown type %q", exec.graph.Name, fr.node.Name, fr.node.Type)
		}
	}
}

// resolve picks the machine for a hop: ensure the model is placed
// (on-demand, modelmesh-style), touch its LRU stamp, then
// join-the-shortest-queue over the replicas by replay-side virtual
// occupancy (in-flight completions pruned to the hop cycle first), ties
// to the lowest index — at one replica this always lands on the same
// machine load.Replay would be.
func (x *replayer) resolve(route int64, model string, t int64) (*machineState, *modelInfo, error) {
	f := x.f
	f.mu.Lock()
	d, ok := f.deployments[model]
	if !ok {
		f.mu.Unlock()
		return nil, nil, fmt.Errorf("fleet: trace names unknown model %q", model)
	}
	if len(d.replicas) == 0 {
		if err := f.ensureLocked(d, true); err != nil {
			f.mu.Unlock()
			return nil, nil, err
		}
		f.cfg.Metrics.Inc("fleet.on_demand_loads")
	}
	d.lastUsed = route
	replicas := append([]int(nil), d.replicas...)
	f.mu.Unlock()

	info := x.info[model]
	if info == nil {
		lm, err := f.compiler.Get(model)
		if err != nil {
			return nil, nil, err
		}
		info = &modelInfo{
			service:  lm.Solo.DurationCycles(),
			deadline: lm.SLOTarget,
			maxBatch: lm.Batch.MaxBatch,
			window:   lm.Batch.WindowCycles,
		}
		x.info[model] = info
	}

	var best *machineState
	bestLoad := 0
	for _, mi := range replicas {
		ms := x.machines[mi]
		ms.prune(t)
		if l := ms.occupancy(); best == nil || l < bestLoad {
			best, bestLoad = ms, l
		}
	}
	return best, info, nil
}

// issueHop admits one hop on its resolved machine — the same admission
// steps, in the same order, as load.Replay's arrival handling: flush
// overdue windows, prune completions, check occupancy (reject or shed
// the live queue's victim), open or extend the model's batch, flush
// when full or windowless.
func (x *replayer) issueHop(exec *routeExec, ens *execFrame, route int64, graphName, nodeName, model string, t int64, after int) error {
	ms, info, err := x.resolve(route, model, t)
	if err != nil {
		return err
	}
	if err := x.flushDue(ms, t); err != nil {
		return err
	}
	ms.prune(t)
	p := &fleetPending{cycle: t, service: info.service, deadline: info.deadline,
		exec: exec, ens: ens, graph: graphName, node: nodeName, model: model, after: after}
	if ms.occupancy() >= x.sc.QueueDepth {
		if !x.shed {
			x.countFail(p, &x.rep.Rejected)
			return nil
		}
		ps := ms.openInOrder()
		cands := make([]serve.ShedCandidate, 0, len(ps)+1)
		for _, q := range ps {
			cands = append(cands, serve.ShedCandidate{Deadline: q.deadline, Service: q.service})
		}
		cands = append(cands, serve.ShedCandidate{Deadline: p.deadline, Service: p.service})
		v := serve.PickShedVictim(cands)
		if v == len(ps) {
			x.countFail(p, &x.rep.Shed)
			return nil
		}
		ps[v].shed = true
		x.countFail(ps[v], &x.rep.Shed)
	}
	vb := ms.open[model]
	if vb == nil {
		vb = &fleetBatch{}
		if info.maxBatch > 1 && info.window > 0 {
			vb.flushCycle = t + info.window
		}
		ms.open[model] = vb
	}
	vb.items = append(vb.items, p)
	full := 0
	for _, q := range vb.items {
		if !q.shed {
			full++
		}
	}
	if full >= info.maxBatch || vb.flushCycle == 0 {
		return x.flush(ms, model, vb)
	}
	return nil
}

// countFail records one admission failure: plain requests count
// directly; a route counts once, at its first failed hop (in-flight
// sibling branches of a failed route complete as no-ops).
func (x *replayer) countFail(p *fleetPending, counter *int) {
	if p.exec == nil {
		*counter++
		return
	}
	if !p.exec.failed {
		p.exec.failed = true
		*counter++
	}
}

// flushDue flushes the machine's overdue windows in deterministic
// (flushCycle, model) order — load.Replay's discipline.
func (x *replayer) flushDue(ms *machineState, now int64) error {
	for {
		var dueModel string
		var due *fleetBatch
		for _, m := range sortedKeys(ms.open) {
			vb := ms.open[m]
			if vb.flushCycle > 0 && now > vb.flushCycle &&
				(due == nil || vb.flushCycle < due.flushCycle) {
				dueModel, due = m, vb
			}
		}
		if due == nil {
			return nil
		}
		if err := x.flush(ms, dueModel, due); err != nil {
			return err
		}
	}
}

// flush hands one formed batch to the machine's InferBatch and settles
// each member: plain requests feed the report directly; routed hops
// record their certificate entry and schedule the route's continuation
// on the event heap (never recursively — the heap's (cycle, seq) order
// is the one source of interleaving).
func (x *replayer) flush(ms *machineState, model string, vb *fleetBatch) error {
	delete(ms.open, model)
	var batch []serve.InferRequest
	var live []*fleetPending
	for _, p := range vb.items {
		if p.shed {
			continue
		}
		batch = append(batch, serve.InferRequest{Model: model, ArrivalCycle: p.cycle})
		live = append(live, p)
	}
	if len(batch) == 0 {
		return nil
	}
	outs, err := ms.srv.InferBatch(context.Background(), batch, serve.BatchOptions{Execute: x.sc.Execute})
	if err != nil {
		return err
	}
	for i, o := range outs {
		p := live[i]
		switch {
		case o.Err == nil:
			heap.Push(&ms.inFlight, o.Resp.EndCycle)
			x.settle(ms, p, o.Resp)
		case errors.Is(o.Err, serve.ErrDeadlineViolation):
			x.countFail(p, &x.rep.Violated)
		default:
			x.countFail(p, &x.rep.Errors)
		}
	}
	return nil
}

// settle finishes one served hop.
func (x *replayer) settle(ms *machineState, p *fleetPending, resp *serve.InferResponse) {
	if p.exec == nil {
		x.observe(resp)
		return
	}
	exec := p.exec
	idx := x.f.recordHop(verify.FleetHop{
		Route: exec.route, Index: exec.hopCount, Graph: p.graph, Node: p.node,
		Model: p.model, Machine: x.f.machines[ms.idx].name,
		Arrival: p.cycle, End: resp.EndCycle, After: p.after,
	})
	exec.hopCount++
	exec.lastBatch = resp.BatchSize
	exec.lastClass = resp.SLOClass
	if resp.SLOMiss {
		exec.sloMiss = true
	}
	exec.stages.BatchWait += resp.BatchWaitCycles
	exec.stages.LeaseWait += resp.LeaseWaitCycles
	exec.stages.Execute += resp.ExecuteCycles
	x.f.cfg.Metrics.Inc("fleet.hops")
	x.f.cfg.Metrics.Inc(obs.LabeledKey("fleet.hops", "machine", x.f.machines[ms.idx].name))
	if p.ens != nil {
		fr := p.ens
		fr.remaining--
		if resp.EndCycle > fr.maxEnd {
			fr.maxEnd = resp.EndCycle
			fr.maxCert = idx
		}
		if fr.remaining == 0 && !exec.failed {
			// All branches joined: pop the ensemble frame (it is the top —
			// nothing advances a route while a join is outstanding) and
			// resume the parent at the slowest branch's completion.
			exec.frames = exec.frames[:len(exec.frames)-1]
			exec.lastCert = fr.maxCert
			x.pushEvent(exec, fr.maxEnd)
		}
		return
	}
	if !exec.failed {
		exec.lastCert = idx
		x.pushEvent(exec, resp.EndCycle)
	}
}

func (x *replayer) pushEvent(exec *routeExec, cycle int64) {
	x.eventSeq++
	heap.Push(&x.events, hopEvent{cycle: cycle, seq: x.eventSeq, exec: exec})
}

// observe feeds one request-level completion into the report.
func (x *replayer) observe(resp *serve.InferResponse) {
	x.rep.Served++
	x.stats.Observe(resp)
	cs := x.rep.Classes[resp.SLOClass]
	cs.Served++
	if resp.SLOMiss {
		cs.SLOMiss++
		x.rep.SLOMiss++
	}
	x.rep.Classes[resp.SLOClass] = cs
}

// finishExec completes a route: its end-to-end latency is the last
// completion minus the trace arrival (Sequence hops pin each arrival to
// the predecessor's end, so the pinning is exact; Ensemble branches
// join at the slowest end). The synthesized response's stage cycles sum
// the hop stages — for a pure Sequence they partition the latency
// exactly; an Ensemble's concurrent branches make the sum an
// upper bound.
func (x *replayer) finishExec(exec *routeExec, t int64) {
	x.observe(&serve.InferResponse{
		Model:           exec.graph.Name,
		ArrivalCycle:    exec.arrival,
		EndCycle:        t,
		LatencyCycles:   t - exec.arrival,
		BatchSize:       exec.lastBatch,
		SLOClass:        exec.lastClass,
		SLOMiss:         exec.sloMiss,
		BatchWaitCycles: exec.stages.BatchWait,
		LeaseWaitCycles: exec.stages.LeaseWait,
		ExecuteCycles:   exec.stages.Execute,
	})
	x.f.cfg.Metrics.Observe("fleet.route_latency_cycles", float64(t-exec.arrival))
}

// drain settles the trailing state once the trace is exhausted: pending
// events first (each may open fresh batches), then the globally
// earliest-headed open batch across (machine index, sorted model) —
// load.Replay's trailing order, lifted to N machines — until nothing is
// open anywhere.
func (x *replayer) drain() error {
	for {
		if x.events.Len() > 0 {
			ev := heap.Pop(&x.events).(hopEvent)
			if err := x.advance(ev.exec, ev.cycle); err != nil {
				return err
			}
			continue
		}
		var bestMS *machineState
		var bestModel string
		var best *fleetBatch
		for _, ms := range x.machines {
			for _, m := range sortedKeys(ms.open) {
				vb := ms.open[m]
				if best == nil || fleetHeadCycle(vb) < fleetHeadCycle(best) {
					bestMS, bestModel, best = ms, m, vb
				}
			}
		}
		if best == nil {
			return nil
		}
		if err := x.flush(bestMS, bestModel, best); err != nil {
			return err
		}
	}
}
