package pim

import (
	"reflect"
	"testing"
	"testing/quick"
)

// randomTrace builds a protocol-shaped multi-channel trace from fuzz
// bytes: every channel gets GWRITE / G_ACT / COMP / READRES rounds with
// varying bursts, cols, and row reuse.
func randomTrace(seed []byte) *Trace {
	at := func(i int) int {
		if len(seed) == 0 {
			return 1
		}
		return int(seed[i%len(seed)])
	}
	nCh := at(0)%4 + 1
	tr := &Trace{}
	for ch := 0; ch < nCh; ch++ {
		ct := ChannelTrace{Channel: ch}
		rounds := at(ch+1)%5 + 1
		for r := 0; r < rounds; r++ {
			base := ch*7 + r*3
			ct.Commands = append(ct.Commands,
				Command{Kind: Kind(at(base) % 4), Bursts: at(base+1)%32 + 1}, // some GWRITE variant
				Command{Kind: KindGAct, NewRow: at(base+2)%2 == 0},
				Command{Kind: KindComp, Cols: at(base+3)%32 + 1},
				Command{Kind: KindReadRes, Bursts: at(base+4)%4 + 1},
			)
		}
		tr.Channels = append(tr.Channels, ct)
	}
	return tr
}

// feedTrace drives a StreamSim with a materialized trace.
func feedTrace(s *StreamSim, tr *Trace) {
	for _, ct := range tr.Channels {
		s.BeginChannel(ct.Channel)
		for _, cmd := range ct.Commands {
			s.Emit(cmd)
		}
	}
}

// Property: feeding any protocol-shaped trace through StreamSim yields
// Stats identical to Simulate on the materialized trace, for every
// configuration variant that changes stepper behavior.
func TestPropertyStreamSimMatchesSimulate(t *testing.T) {
	cfgs := []Config{DefaultConfig(), NewtonConfig()}
	pp := DefaultConfig()
	pp.BankPingPong = true
	refresh := DefaultConfig()
	refresh.ModelRefresh = true
	cfgs = append(cfgs, pp, refresh)

	f := func(seed []byte) bool {
		tr := randomTrace(seed)
		for _, cfg := range cfgs {
			want, err := Simulate(cfg, tr)
			if err != nil {
				return false
			}
			sim, err := NewStreamSim(cfg)
			if err != nil {
				return false
			}
			feedTrace(sim, tr)
			got, err := sim.Finish()
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(got, want) {
				t.Logf("diverged:\n got %+v\nwant %+v", got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Reset must clear latched errors and channel state so a pooled StreamSim
// is indistinguishable from a fresh one.
func TestStreamSimResetReuse(t *testing.T) {
	cfg := DefaultConfig()
	sim, err := NewStreamSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Poison: emit without a channel, latching an error.
	sim.Emit(Command{Kind: KindComp, Cols: 1})
	if _, err := sim.Finish(); err == nil {
		t.Fatal("Emit before BeginChannel accepted")
	}
	tr := randomTrace([]byte{9, 4, 7, 1, 8})
	want, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sim.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		feedTrace(sim, tr)
		got, err := sim.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("reuse %d diverged:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestStreamSimErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.GlobalBufs = 3
	if _, err := NewStreamSim(bad); err == nil {
		t.Error("invalid config accepted")
	}
	sim, err := NewStreamSim(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Finish(); err == nil {
		t.Error("empty stream accepted")
	}
	// A command the stepper rejects latches its error until Finish.
	if err := sim.Reset(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	sim.BeginChannel(0)
	sim.Emit(Command{Kind: KindComp, Cols: 0})
	sim.Emit(Command{Kind: KindComp, Cols: 5}) // ignored after the latch
	if _, err := sim.Finish(); err == nil {
		t.Error("invalid COMP accepted")
	}
	// More channel streams than the config has channels.
	cfg := DefaultConfig()
	cfg.Channels = 1
	if err := sim.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	sim.BeginChannel(0)
	sim.Emit(Command{Kind: KindComp, Cols: 1})
	sim.BeginChannel(1)
	if _, err := sim.Finish(); err == nil {
		t.Error("channel overflow accepted")
	}
}

func TestTraceSinkMaterializes(t *testing.T) {
	var ts TraceSink
	ts.BeginChannel(3)
	ts.Emit(Command{Kind: KindGWrite, Bursts: 2})
	ts.BeginChannel(5)
	ts.Emit(Command{Kind: KindGAct, NewRow: true})
	ts.Emit(Command{Kind: KindComp, Cols: 4})
	want := Trace{Channels: []ChannelTrace{
		{Channel: 3, Commands: []Command{{Kind: KindGWrite, Bursts: 2}}},
		{Channel: 5, Commands: []Command{
			{Kind: KindGAct, NewRow: true},
			{Kind: KindComp, Cols: 4},
		}},
	}}
	if !reflect.DeepEqual(ts.Trace, want) {
		t.Fatalf("trace %+v, want %+v", ts.Trace, want)
	}
}

// The stepper's Feed must agree with the batch simulator's event windows
// command for command.
func TestChannelSimFeedWindowsMatchEvents(t *testing.T) {
	cfg := DefaultConfig()
	tr := randomTrace([]byte{3, 1, 4, 1, 5, 9, 2, 6})
	_, events, err := SimulateEvents(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	var cs ChannelSim
	for _, ct := range tr.Channels {
		cs.Reset(cfg, ct.Channel)
		for _, cmd := range ct.Commands {
			start, end, err := cs.Feed(cmd)
			if err != nil {
				t.Fatal(err)
			}
			ev := events[i]
			if ev.Start != start || ev.End != end || ev.Channel != ct.Channel || ev.Kind != cmd.Kind {
				t.Fatalf("event %d: Feed window [%d,%d] vs SimulateEvents %+v", i, start, end, ev)
			}
			i++
		}
	}
	if i != len(events) {
		t.Fatalf("walked %d commands, %d events", i, len(events))
	}
}

func TestChannelSimFeedErrors(t *testing.T) {
	var cs ChannelSim
	cs.Reset(DefaultConfig(), 7)
	if _, _, err := cs.Feed(Command{Kind: KindGWrite, Bursts: -1}); err == nil {
		t.Error("negative bursts accepted")
	}
	cs.Reset(DefaultConfig(), 7)
	if _, _, err := cs.Feed(Command{Kind: KindComp, Cols: 0}); err == nil {
		t.Error("zero-col COMP accepted")
	}
	cs.Reset(DefaultConfig(), 7)
	if _, _, err := cs.Feed(Command{Kind: Kind(200)}); err == nil {
		t.Error("unknown kind accepted")
	}
}
