package pim

import (
	"fmt"

	"pimflow/internal/num"
)

// Stats is the result of simulating a PIM kernel trace.
type Stats struct {
	// Cycles is the kernel makespan: the slowest channel's drain time.
	Cycles int64
	// PerChannel holds each participating channel's drain time.
	PerChannel []int64
	// PerChannelBusy holds each participating channel's MAC-pipeline busy
	// cycles (the numerator of its utilization).
	PerChannelBusy []int64
	// PerChannelCounts holds each participating channel's command counts.
	PerChannelCounts []Counts
	// Counts aggregates command counts across channels.
	Counts Counts
	// Seconds is Cycles converted through the configured clock.
	Seconds float64
	// BusyFraction is the mean per-channel MAC-pipeline busy fraction,
	// a PIM utilization measure.
	BusyFraction float64
}

// Scale returns the stats multiplied by n, modeling n back-to-back runs of
// the same trace (grouped convolutions execute one per-group GEMM trace
// per group). Cycles, per-channel times, seconds, and command counts all
// scale linearly; BusyFraction is an average and stays put.
func (s Stats) Scale(n int64) Stats {
	if n == 1 {
		return s
	}
	out := s
	out.Cycles *= n
	out.Seconds *= float64(n)
	out.PerChannel = make([]int64, len(s.PerChannel))
	for i, c := range s.PerChannel {
		out.PerChannel[i] = c * n
	}
	out.PerChannelBusy = make([]int64, len(s.PerChannelBusy))
	for i, c := range s.PerChannelBusy {
		out.PerChannelBusy[i] = c * n
	}
	out.PerChannelCounts = make([]Counts, len(s.PerChannelCounts))
	for i, c := range s.PerChannelCounts {
		out.PerChannelCounts[i] = c.Scale(n)
	}
	out.Counts = s.Counts.Scale(n)
	return out
}

// CommandEvent is the simulated activity window of one command: issue to
// completion, in PIM-clock cycles. SimulateEvents emits one per command so
// observability layers can render per-channel activity on a timeline.
type CommandEvent struct {
	Channel    int
	Kind       Kind
	Start, End int64
}

// channelState tracks one channel's in-order command queue timing.
type channelState struct {
	t            int64 // next command issue cycle
	busInFreeAt  int64 // inbound data path (GWRITE bursts from GPU channels)
	busOutFreeAt int64 // outbound data path (READRES bursts to GPU channels)
	rowReadyAt   int64 // row activation completion
	rowOpenAt    int64 // when the current row was opened (tRAS)
	rowOpen      bool
	bufReadyAt   int64 // global buffer data availability
	lastCompAt   int64 // start of the most recent COMP (prefetch window)
	compFreeAt   int64 // MAC pipeline drain
	compBusy     int64 // cycles the MAC pipeline was streaming
}

// Simulate executes the trace against the configuration and returns timing
// statistics. Channels are independent; within a channel, commands issue
// in order with the following semantics (paper §2.1, §4.1):
//
//   - GWRITE occupies the channel data path for Bursts×tBL cycles and makes
//     the global buffer ready when the transfer completes. Without GWRITE
//     latency hiding the command queue blocks until then; with hiding
//     (PIMFlow's extension) the next command — typically G_ACT — issues in
//     the next cycle, because activation data is fetched from GPU channels
//     while PIM channels activate rows.
//   - G_ACT readies a row after tRCD (plus tRP, respecting tRAS, when a
//     different row is open).
//   - COMP waits for the row, the buffer, and the MAC pipeline, then
//     streams Cols column I/Os at one per tCCDL.
//   - READRES drains the result latches after the pipeline: tCL + bursts.
func Simulate(cfg Config, tr *Trace) (Stats, error) {
	st, _, err := simulate(cfg, tr, false)
	return st, err
}

// SimulateEvents is Simulate plus the per-command activity windows, in
// channel order then command order. It costs extra allocation proportional
// to the command count, so it is reserved for tracing runs.
func SimulateEvents(cfg Config, tr *Trace) (Stats, []CommandEvent, error) {
	return simulate(cfg, tr, true)
}

func simulate(cfg Config, tr *Trace, record bool) (Stats, []CommandEvent, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, nil, err
	}
	if len(tr.Channels) == 0 {
		return Stats{}, nil, fmt.Errorf("pim: empty trace")
	}
	if len(tr.Channels) > cfg.Channels {
		return Stats{}, nil, fmt.Errorf("pim: trace uses %d channels, config has %d", len(tr.Channels), cfg.Channels)
	}
	tm := cfg.Timing
	stats := Stats{
		PerChannel:       make([]int64, len(tr.Channels)),
		PerChannelBusy:   make([]int64, len(tr.Channels)),
		PerChannelCounts: make([]Counts, len(tr.Channels)),
	}
	var events []CommandEvent
	if record {
		events = make([]CommandEvent, 0, tr.TotalCommands())
	}
	var busySum float64
	for i, ch := range tr.Channels {
		var s channelState
		for _, cmd := range ch.Commands {
			var evStart, evEnd int64
			switch {
			case cmd.Kind.IsGWrite():
				if cmd.Bursts < 0 {
					return Stats{}, nil, fmt.Errorf("pim: negative bursts on channel %d", ch.Channel)
				}
				var start int64
				if cfg.GWriteLatencyHiding {
					// Asynchronous issue (§4.1): the controller queues the
					// transfer with one-deep prefetch — it streams in from
					// GPU channels once computation on the previous buffer
					// set has begun, overlapping transfer with COMP/G_ACT.
					start = num.Max64(s.busInFreeAt, s.lastCompAt)
				} else {
					start = num.Max64(s.t, num.Max64(s.busInFreeAt, s.busOutFreeAt))
				}
				if cfg.GlobalBufs == 1 {
					// A single buffer cannot be refilled while COMPs are
					// still consuming it; multiple buffers double-buffer.
					start = num.Max64(start, s.compFreeAt)
				}
				done := start + int64(cmd.Bursts)*int64(tm.TBL)
				s.busInFreeAt = done
				s.bufReadyAt = done
				if cfg.GWriteLatencyHiding {
					// The queue moves on so the following G_ACT overlaps
					// the in-flight transfer.
					s.t = num.Max64(s.t, start) + 1
				} else {
					s.t = done
				}
				evStart, evEnd = start, done
			case cmd.Kind == KindGAct:
				// Banks cannot activate a new row while the MAC pipeline
				// streams column I/Os from the open one — unless bank
				// ping-pong is enabled, in which case the activation lands
				// in the other bank group and overlaps the COMP stream.
				start := num.Max64(s.t, s.compFreeAt)
				if cfg.BankPingPong {
					start = s.t
				}
				if cmd.NewRow && s.rowOpen {
					// Precharge the open row first, honoring tRAS.
					pre := num.Max64(start, s.rowOpenAt+int64(tm.TRAS))
					s.rowReadyAt = pre + int64(tm.TRP) + int64(tm.TRCD)
					start = pre
				} else {
					s.rowReadyAt = start + int64(tm.TRCD)
				}
				s.rowOpenAt = s.rowReadyAt
				s.rowOpen = true
				s.t = start + 1
				evStart, evEnd = start, s.rowReadyAt
			case cmd.Kind == KindComp:
				if cmd.Cols <= 0 {
					return Stats{}, nil, fmt.Errorf("pim: COMP with %d cols on channel %d", cmd.Cols, ch.Channel)
				}
				start := num.Max64(num.Max64(s.t, s.rowReadyAt), num.Max64(s.bufReadyAt, s.compFreeAt))
				dur := int64(cmd.Cols) * int64(tm.TCCDL)
				s.lastCompAt = start
				s.compFreeAt = start + dur
				s.compBusy += dur
				// Issue is pipelined: the queue advances so a following
				// GWRITE can stream the next buffer during the COMPs.
				s.t = start + 1
				evStart, evEnd = start, s.compFreeAt
			case cmd.Kind == KindReadRes:
				// Result latches must be stable: drain after the pipeline,
				// and block the queue (no latch double-buffering). Results
				// leave on the outbound path toward GPU channels.
				start := num.Max64(num.Max64(s.t, s.compFreeAt), s.busOutFreeAt)
				done := start + int64(tm.TCL) + int64(cmd.Bursts)*int64(tm.TBL)
				s.busOutFreeAt = done
				s.t = done
				evStart, evEnd = start, done
			default:
				return Stats{}, nil, fmt.Errorf("pim: unknown command kind %d", cmd.Kind)
			}
			if record {
				events = append(events, CommandEvent{Channel: ch.Channel, Kind: cmd.Kind, Start: evStart, End: evEnd})
			}
		}
		drain := num.Max64(num.Max64(s.t, num.Max64(s.busInFreeAt, s.busOutFreeAt)), s.compFreeAt)
		if cfg.ModelRefresh && cfg.Timing.TREFI > 0 {
			// All-bank refresh steals tRFC every tREFI: stretch the drain
			// time by the refresh duty cycle (kernels are short relative
			// to tREFI, so the amortized model matches interleaving).
			duty := float64(cfg.Timing.TRFC) / float64(cfg.Timing.TREFI-cfg.Timing.TRFC)
			drain += int64(float64(drain) * duty)
		}
		stats.PerChannel[i] = drain
		stats.PerChannelBusy[i] = s.compBusy
		if drain > stats.Cycles {
			stats.Cycles = drain
		}
		if drain > 0 {
			busySum += float64(s.compBusy) / float64(drain)
		}
		stats.PerChannelCounts[i] = CountOf(ch)
		stats.Counts.Add(stats.PerChannelCounts[i])
	}
	stats.BusyFraction = busySum / float64(len(tr.Channels))
	stats.Counts.MACs = stats.Counts.ColIOs * int64(cfg.BanksPerChannel) * int64(cfg.MultsPerBank)
	stats.Seconds = cfg.CyclesToSeconds(stats.Cycles)
	return stats, events, nil
}
