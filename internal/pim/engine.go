package pim

import "fmt"

// Stats is the result of simulating a PIM kernel trace.
type Stats struct {
	// Cycles is the kernel makespan: the slowest channel's drain time.
	Cycles int64
	// PerChannel holds each participating channel's drain time.
	PerChannel []int64
	// Counts aggregates command counts across channels.
	Counts Counts
	// Seconds is Cycles converted through the configured clock.
	Seconds float64
	// BusyFraction is the mean per-channel MAC-pipeline busy fraction,
	// a PIM utilization measure.
	BusyFraction float64
}

// Scale returns the stats multiplied by n, modeling n back-to-back runs of
// the same trace (grouped convolutions execute one per-group GEMM trace
// per group). Cycles, per-channel times, seconds, and command counts all
// scale linearly; BusyFraction is an average and stays put.
func (s Stats) Scale(n int64) Stats {
	if n == 1 {
		return s
	}
	out := s
	out.Cycles *= n
	out.Seconds *= float64(n)
	out.PerChannel = make([]int64, len(s.PerChannel))
	for i, c := range s.PerChannel {
		out.PerChannel[i] = c * n
	}
	c := s.Counts
	c.GWrites *= n
	c.GActs *= n
	c.Comps *= n
	c.ReadRes *= n
	c.ColIOs *= n
	c.GWBursts *= n
	c.RRBursts *= n
	c.NewRows *= n
	c.MACs *= n
	out.Counts = c
	return out
}

// channelState tracks one channel's in-order command queue timing.
type channelState struct {
	t            int64 // next command issue cycle
	busInFreeAt  int64 // inbound data path (GWRITE bursts from GPU channels)
	busOutFreeAt int64 // outbound data path (READRES bursts to GPU channels)
	rowReadyAt   int64 // row activation completion
	rowOpenAt    int64 // when the current row was opened (tRAS)
	rowOpen      bool
	bufReadyAt   int64 // global buffer data availability
	lastCompAt   int64 // start of the most recent COMP (prefetch window)
	compFreeAt   int64 // MAC pipeline drain
	compBusy     int64 // cycles the MAC pipeline was streaming
}

// Simulate executes the trace against the configuration and returns timing
// statistics. Channels are independent; within a channel, commands issue
// in order with the following semantics (paper §2.1, §4.1):
//
//   - GWRITE occupies the channel data path for Bursts×tBL cycles and makes
//     the global buffer ready when the transfer completes. Without GWRITE
//     latency hiding the command queue blocks until then; with hiding
//     (PIMFlow's extension) the next command — typically G_ACT — issues in
//     the next cycle, because activation data is fetched from GPU channels
//     while PIM channels activate rows.
//   - G_ACT readies a row after tRCD (plus tRP, respecting tRAS, when a
//     different row is open).
//   - COMP waits for the row, the buffer, and the MAC pipeline, then
//     streams Cols column I/Os at one per tCCDL.
//   - READRES drains the result latches after the pipeline: tCL + bursts.
func Simulate(cfg Config, tr *Trace) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	if len(tr.Channels) == 0 {
		return Stats{}, fmt.Errorf("pim: empty trace")
	}
	if len(tr.Channels) > cfg.Channels {
		return Stats{}, fmt.Errorf("pim: trace uses %d channels, config has %d", len(tr.Channels), cfg.Channels)
	}
	tm := cfg.Timing
	stats := Stats{PerChannel: make([]int64, len(tr.Channels))}
	var busySum float64
	for i, ch := range tr.Channels {
		var s channelState
		for _, cmd := range ch.Commands {
			switch {
			case cmd.Kind.IsGWrite():
				if cmd.Bursts < 0 {
					return Stats{}, fmt.Errorf("pim: negative bursts on channel %d", ch.Channel)
				}
				var start int64
				if cfg.GWriteLatencyHiding {
					// Asynchronous issue (§4.1): the controller queues the
					// transfer with one-deep prefetch — it streams in from
					// GPU channels once computation on the previous buffer
					// set has begun, overlapping transfer with COMP/G_ACT.
					start = max64(s.busInFreeAt, s.lastCompAt)
				} else {
					start = max64(s.t, max64(s.busInFreeAt, s.busOutFreeAt))
				}
				if cfg.GlobalBufs == 1 {
					// A single buffer cannot be refilled while COMPs are
					// still consuming it; multiple buffers double-buffer.
					start = max64(start, s.compFreeAt)
				}
				done := start + int64(cmd.Bursts)*int64(tm.TBL)
				s.busInFreeAt = done
				s.bufReadyAt = done
				if cfg.GWriteLatencyHiding {
					// The queue moves on so the following G_ACT overlaps
					// the in-flight transfer.
					s.t = max64(s.t, start) + 1
				} else {
					s.t = done
				}
			case cmd.Kind == KindGAct:
				// Banks cannot activate a new row while the MAC pipeline
				// streams column I/Os from the open one — unless bank
				// ping-pong is enabled, in which case the activation lands
				// in the other bank group and overlaps the COMP stream.
				start := max64(s.t, s.compFreeAt)
				if cfg.BankPingPong {
					start = s.t
				}
				if cmd.NewRow && s.rowOpen {
					// Precharge the open row first, honoring tRAS.
					pre := max64(start, s.rowOpenAt+int64(tm.TRAS))
					s.rowReadyAt = pre + int64(tm.TRP) + int64(tm.TRCD)
					start = pre
				} else {
					s.rowReadyAt = start + int64(tm.TRCD)
				}
				s.rowOpenAt = s.rowReadyAt
				s.rowOpen = true
				s.t = start + 1
			case cmd.Kind == KindComp:
				if cmd.Cols <= 0 {
					return Stats{}, fmt.Errorf("pim: COMP with %d cols on channel %d", cmd.Cols, ch.Channel)
				}
				start := max64(max64(s.t, s.rowReadyAt), max64(s.bufReadyAt, s.compFreeAt))
				dur := int64(cmd.Cols) * int64(tm.TCCDL)
				s.lastCompAt = start
				s.compFreeAt = start + dur
				s.compBusy += dur
				// Issue is pipelined: the queue advances so a following
				// GWRITE can stream the next buffer during the COMPs.
				s.t = start + 1
			case cmd.Kind == KindReadRes:
				// Result latches must be stable: drain after the pipeline,
				// and block the queue (no latch double-buffering). Results
				// leave on the outbound path toward GPU channels.
				start := max64(max64(s.t, s.compFreeAt), s.busOutFreeAt)
				done := start + int64(tm.TCL) + int64(cmd.Bursts)*int64(tm.TBL)
				s.busOutFreeAt = done
				s.t = done
			default:
				return Stats{}, fmt.Errorf("pim: unknown command kind %d", cmd.Kind)
			}
		}
		drain := max64(max64(s.t, max64(s.busInFreeAt, s.busOutFreeAt)), s.compFreeAt)
		if cfg.ModelRefresh && cfg.Timing.TREFI > 0 {
			// All-bank refresh steals tRFC every tREFI: stretch the drain
			// time by the refresh duty cycle (kernels are short relative
			// to tREFI, so the amortized model matches interleaving).
			duty := float64(cfg.Timing.TRFC) / float64(cfg.Timing.TREFI-cfg.Timing.TRFC)
			drain += int64(float64(drain) * duty)
		}
		stats.PerChannel[i] = drain
		if drain > stats.Cycles {
			stats.Cycles = drain
		}
		if drain > 0 {
			busySum += float64(s.compBusy) / float64(drain)
		}
		stats.Counts.Add(CountOf(ch))
	}
	stats.BusyFraction = busySum / float64(len(tr.Channels))
	stats.Counts.MACs = stats.Counts.ColIOs * int64(cfg.BanksPerChannel) * int64(cfg.MultsPerBank)
	stats.Seconds = cfg.CyclesToSeconds(stats.Cycles)
	return stats, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
