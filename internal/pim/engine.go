package pim

import (
	"fmt"

	"pimflow/internal/num"
)

// Stats is the result of simulating a PIM kernel trace.
type Stats struct {
	// Cycles is the kernel makespan: the slowest channel's drain time.
	Cycles int64
	// PerChannel holds each participating channel's drain time.
	PerChannel []int64
	// PerChannelBusy holds each participating channel's MAC-pipeline busy
	// cycles (the numerator of its utilization).
	PerChannelBusy []int64
	// PerChannelCounts holds each participating channel's command counts.
	PerChannelCounts []Counts
	// Counts aggregates command counts across channels.
	Counts Counts
	// Seconds is Cycles converted through the configured clock.
	Seconds float64
	// BusyFraction is the mean per-channel MAC-pipeline busy fraction,
	// a PIM utilization measure.
	BusyFraction float64
}

// Scale returns the stats multiplied by n, modeling n back-to-back runs of
// the same trace (grouped convolutions execute one per-group GEMM trace
// per group). Cycles, per-channel times, seconds, and command counts all
// scale linearly; BusyFraction is an average and stays put.
func (s Stats) Scale(n int64) Stats {
	if n == 1 {
		return s
	}
	out := s
	out.Cycles *= n
	out.Seconds *= float64(n)
	out.PerChannel = make([]int64, len(s.PerChannel))
	for i, c := range s.PerChannel {
		out.PerChannel[i] = c * n
	}
	out.PerChannelBusy = make([]int64, len(s.PerChannelBusy))
	for i, c := range s.PerChannelBusy {
		out.PerChannelBusy[i] = c * n
	}
	out.PerChannelCounts = make([]Counts, len(s.PerChannelCounts))
	for i, c := range s.PerChannelCounts {
		out.PerChannelCounts[i] = c.Scale(n)
	}
	out.Counts = s.Counts.Scale(n)
	return out
}

// CommandEvent is the simulated activity window of one command: issue to
// completion, in PIM-clock cycles. SimulateEvents emits one per command so
// observability layers can render per-channel activity on a timeline.
type CommandEvent struct {
	Channel    int
	Kind       Kind
	Start, End int64
}

// ChannelSim is the incremental timing stepper for one PIM channel: feed
// it the channel's command stream in order and read the drain time, busy
// cycles, and command counts at the end. It is the allocation-free core
// that both Simulate (materialized traces) and StreamSim (streaming
// command generation) are built on. The zero value is unusable; call
// Reset first. Within a channel, commands issue in order with the
// following semantics (paper §2.1, §4.1):
//
//   - GWRITE occupies the channel data path for Bursts×tBL cycles and makes
//     the global buffer ready when the transfer completes. Without GWRITE
//     latency hiding the command queue blocks until then; with hiding
//     (PIMFlow's extension) the next command — typically G_ACT — issues in
//     the next cycle, because activation data is fetched from GPU channels
//     while PIM channels activate rows.
//   - G_ACT readies a row after tRCD (plus tRP, respecting tRAS, when a
//     different row is open).
//   - COMP waits for the row, the buffer, and the MAC pipeline, then
//     streams Cols column I/Os at one per tCCDL.
//   - READRES drains the result latches after the pipeline: tCL + bursts.
type ChannelSim struct {
	cfg     Config
	channel int

	t            int64 // next command issue cycle
	busInFreeAt  int64 // inbound data path (GWRITE bursts from GPU channels)
	busOutFreeAt int64 // outbound data path (READRES bursts to GPU channels)
	rowReadyAt   int64 // row activation completion
	rowOpenAt    int64 // when the current row was opened (tRAS)
	rowOpen      bool
	bufReadyAt   int64 // global buffer data availability
	lastCompAt   int64 // start of the most recent COMP (prefetch window)
	compFreeAt   int64 // MAC pipeline drain
	compBusy     int64 // cycles the MAC pipeline was streaming

	counts Counts
}

// Reset rebinds the stepper to a channel id and configuration and clears
// all timing state and counts. The configuration is NOT validated here —
// validate once per simulation, not once per channel.
func (c *ChannelSim) Reset(cfg Config, channel int) {
	*c = ChannelSim{cfg: cfg, channel: channel}
}

// Feed advances the channel by one command and returns the command's
// activity window (issue cycle to completion cycle). Command counts are
// accumulated in-stream, so no second pass over the trace is needed.
func (c *ChannelSim) Feed(cmd Command) (evStart, evEnd int64, err error) {
	tm := &c.cfg.Timing
	// A single switch on the kind covers every GWRITE variant explicitly:
	// this is the simulator's hottest dispatch, and the chained
	// Kind.IsGWrite() comparisons it replaces showed up in CPU profiles.
	switch cmd.Kind {
	case KindGWrite, KindGWrite2, KindGWrite4, KindGWriteStrided:
		if cmd.Bursts < 0 {
			return 0, 0, fmt.Errorf("pim: negative bursts on channel %d", c.channel)
		}
		var start int64
		if c.cfg.GWriteLatencyHiding {
			// Asynchronous issue (§4.1): the controller queues the
			// transfer with one-deep prefetch — it streams in from
			// GPU channels once computation on the previous buffer
			// set has begun, overlapping transfer with COMP/G_ACT.
			start = num.Max64(c.busInFreeAt, c.lastCompAt)
		} else {
			start = num.Max64(c.t, num.Max64(c.busInFreeAt, c.busOutFreeAt))
		}
		if c.cfg.GlobalBufs == 1 {
			// A single buffer cannot be refilled while COMPs are
			// still consuming it; multiple buffers double-buffer.
			start = num.Max64(start, c.compFreeAt)
		}
		done := start + int64(cmd.Bursts)*int64(tm.TBL)
		c.busInFreeAt = done
		c.bufReadyAt = done
		if c.cfg.GWriteLatencyHiding {
			// The queue moves on so the following G_ACT overlaps
			// the in-flight transfer.
			c.t = num.Max64(c.t, start) + 1
		} else {
			c.t = done
		}
		c.counts.GWrites++
		c.counts.GWBursts += int64(cmd.Bursts)
		return start, done, nil
	case KindGAct:
		// Banks cannot activate a new row while the MAC pipeline
		// streams column I/Os from the open one — unless bank
		// ping-pong is enabled, in which case the activation lands
		// in the other bank group and overlaps the COMP stream.
		start := num.Max64(c.t, c.compFreeAt)
		if c.cfg.BankPingPong {
			start = c.t
		}
		if cmd.NewRow && c.rowOpen {
			// Precharge the open row first, honoring tRAS.
			pre := num.Max64(start, c.rowOpenAt+int64(tm.TRAS))
			c.rowReadyAt = pre + int64(tm.TRP) + int64(tm.TRCD)
			start = pre
		} else {
			c.rowReadyAt = start + int64(tm.TRCD)
		}
		c.rowOpenAt = c.rowReadyAt
		c.rowOpen = true
		c.t = start + 1
		c.counts.GActs++
		if cmd.NewRow {
			c.counts.NewRows++
		}
		return start, c.rowReadyAt, nil
	case KindComp:
		if cmd.Cols <= 0 {
			return 0, 0, fmt.Errorf("pim: COMP with %d cols on channel %d", cmd.Cols, c.channel)
		}
		start := num.Max64(num.Max64(c.t, c.rowReadyAt), num.Max64(c.bufReadyAt, c.compFreeAt))
		dur := int64(cmd.Cols) * int64(tm.TCCDL)
		c.lastCompAt = start
		c.compFreeAt = start + dur
		c.compBusy += dur
		// Issue is pipelined: the queue advances so a following
		// GWRITE can stream the next buffer during the COMPs.
		c.t = start + 1
		c.counts.Comps++
		c.counts.ColIOs += int64(cmd.Cols)
		return start, c.compFreeAt, nil
	case KindReadRes:
		// Result latches must be stable: drain after the pipeline,
		// and block the queue (no latch double-buffering). Results
		// leave on the outbound path toward GPU channels.
		start := num.Max64(num.Max64(c.t, c.compFreeAt), c.busOutFreeAt)
		done := start + int64(tm.TCL) + int64(cmd.Bursts)*int64(tm.TBL)
		c.busOutFreeAt = done
		c.t = done
		c.counts.ReadRes++
		c.counts.RRBursts += int64(cmd.Bursts)
		return start, done, nil
	default:
		return 0, 0, fmt.Errorf("pim: unknown command kind %d", cmd.Kind)
	}
}

// Phase is a complete snapshot of a ChannelSim's timing state: every
// absolute-cycle field, the row-open flag, and the accumulated busy
// cycles and command counts. Streaming generators use pairs of phases to
// detect a periodic steady state (ShiftOf) and then fast-forward whole
// repetitions of a command block (Advance) instead of feeding them.
type Phase struct {
	times   [8]int64
	rowOpen bool
	busy    int64
	counts  Counts
}

// Phase snapshots the current state.
func (c *ChannelSim) Phase() Phase {
	return Phase{
		times: [8]int64{
			c.t, c.busInFreeAt, c.busOutFreeAt, c.rowReadyAt,
			c.rowOpenAt, c.bufReadyAt, c.lastCompAt, c.compFreeAt,
		},
		rowOpen: c.rowOpen,
		busy:    c.compBusy,
		counts:  c.counts,
	}
}

// ShiftOf reports whether cur is prev translated forward in time by one
// uniform shift: every timing field advanced by the same non-negative
// delta and the row-open flag is unchanged. When it holds, the transition
// prev→cur is a fixed point of the recurrence up to translation — every
// Feed rule computes only maxima of state fields plus constant offsets,
// with no absolute-time constants — so replaying the same command block
// from cur yields exactly cur shifted by the same delta again.
func ShiftOf(prev, cur Phase) (int64, bool) {
	if cur.rowOpen != prev.rowOpen {
		return 0, false
	}
	dt := cur.times[0] - prev.times[0]
	if dt < 0 {
		return 0, false
	}
	for i := 1; i < len(cur.times); i++ {
		if cur.times[i]-prev.times[i] != dt {
			return 0, false
		}
	}
	return dt, true
}

// Advance fast-forwards the channel by k further repetitions of a command
// block whose single-repetition effect was the transition prev→cur. The
// caller must have established ShiftOf(prev, cur) — then each repetition
// shifts every timing field by the same delta and accumulates the same
// busy/count increments, so k repetitions are applied in O(1) with
// results identical to feeding every command.
func (c *ChannelSim) Advance(k int64, prev, cur Phase) {
	if k <= 0 {
		return
	}
	dt := (cur.times[0] - prev.times[0]) * k
	c.t += dt
	c.busInFreeAt += dt
	c.busOutFreeAt += dt
	c.rowReadyAt += dt
	c.rowOpenAt += dt
	c.bufReadyAt += dt
	c.lastCompAt += dt
	c.compFreeAt += dt
	c.compBusy += (cur.busy - prev.busy) * k
	d := cur.counts
	d.Sub(prev.counts)
	c.counts.Add(d.Scale(k))
}

// ShiftOfInterior is the steady-state test for command blocks that
// contain no GWRITE (the interior of one buffered row: G_ACT, COMP, and
// READRES only). Such blocks never move busInFreeAt or bufReadyAt, so
// the uniform-shift test of ShiftOf can never hold; instead those two
// fields are checked to be irrelevant:
//
//   - busInFreeAt is neither read nor written by G_ACT/COMP/READRES, so
//     its (unchanged) value cannot influence a GWRITE-free replay.
//   - bufReadyAt is read by COMP's start rule, but t never decreases,
//     and every COMP start is ≥ the t at its issue ≥ prev's t. So once
//     bufReadyAt ≤ t, the stale buffer-ready time can never win the
//     COMP max again and the recurrence reduces to the remaining six
//     fields — which are translation-invariant exactly as in ShiftOf.
//
// When it holds, replaying the block from cur advances the six live
// fields by dt again and leaves the two frozen fields untouched;
// AdvanceInterior applies k such repetitions in O(1), bit-identically.
func ShiftOfInterior(prev, cur Phase) (int64, bool) {
	if cur.rowOpen != prev.rowOpen {
		return 0, false
	}
	dt := cur.times[0] - prev.times[0]
	if dt < 0 {
		return 0, false
	}
	// Indices into Phase.times: 0 t, 1 busInFreeAt, 2 busOutFreeAt,
	// 3 rowReadyAt, 4 rowOpenAt, 5 bufReadyAt, 6 lastCompAt, 7 compFreeAt.
	for _, i := range [...]int{2, 3, 4, 6, 7} {
		if cur.times[i]-prev.times[i] != dt {
			return 0, false
		}
	}
	if cur.times[1] != prev.times[1] || cur.times[5] != prev.times[5] {
		// A moved bus-in or buffer-ready time means the block was not
		// GWRITE-free after all; fall back to full simulation.
		return 0, false
	}
	if prev.times[5] > prev.times[0] {
		// The buffer-ready time is still ahead of t and could yet gate
		// a COMP start.
		return 0, false
	}
	return dt, true
}

// AdvanceInterior fast-forwards k repetitions of a GWRITE-free block
// whose transition prev→cur satisfied ShiftOfInterior: the six live
// timing fields shift, busInFreeAt and bufReadyAt stay frozen.
func (c *ChannelSim) AdvanceInterior(k int64, prev, cur Phase) {
	if k <= 0 {
		return
	}
	dt := (cur.times[0] - prev.times[0]) * k
	c.t += dt
	c.busOutFreeAt += dt
	c.rowReadyAt += dt
	c.rowOpenAt += dt
	c.lastCompAt += dt
	c.compFreeAt += dt
	c.compBusy += (cur.busy - prev.busy) * k
	d := cur.counts
	d.Sub(prev.counts)
	c.counts.Add(d.Scale(k))
}

// Drain returns the channel's drain time: the cycle when the command
// queue, both data paths, and the MAC pipeline have all gone idle,
// stretched by the refresh duty cycle when refresh modeling is on.
func (c *ChannelSim) Drain() int64 {
	drain := num.Max64(num.Max64(c.t, num.Max64(c.busInFreeAt, c.busOutFreeAt)), c.compFreeAt)
	if c.cfg.ModelRefresh && c.cfg.Timing.TREFI > 0 {
		// All-bank refresh steals tRFC every tREFI: stretch the drain
		// time by the refresh duty cycle (kernels are short relative
		// to tREFI, so the amortized model matches interleaving).
		duty := float64(c.cfg.Timing.TRFC) / float64(c.cfg.Timing.TREFI-c.cfg.Timing.TRFC)
		drain += int64(float64(drain) * duty)
	}
	return drain
}

// Busy returns the cycles the MAC pipeline spent streaming column I/Os.
func (c *ChannelSim) Busy() int64 { return c.compBusy }

// Counts returns the command counts accumulated by Feed so far (MACs is
// a cross-channel derived quantity and stays zero here, matching
// CountOf).
func (c *ChannelSim) Counts() Counts { return c.counts }

// Simulate executes the trace against the configuration and returns timing
// statistics. Channels are independent; see ChannelSim for the per-channel
// command semantics.
func Simulate(cfg Config, tr *Trace) (Stats, error) {
	st, _, err := simulate(cfg, tr, false)
	return st, err
}

// SimulateEvents is Simulate plus the per-command activity windows, in
// channel order then command order. It costs extra allocation proportional
// to the command count, so it is reserved for tracing runs.
func SimulateEvents(cfg Config, tr *Trace) (Stats, []CommandEvent, error) {
	return simulate(cfg, tr, true)
}

func simulate(cfg Config, tr *Trace, record bool) (Stats, []CommandEvent, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, nil, err
	}
	if len(tr.Channels) == 0 {
		return Stats{}, nil, fmt.Errorf("pim: empty trace")
	}
	if len(tr.Channels) > cfg.Channels {
		return Stats{}, nil, fmt.Errorf("pim: trace uses %d channels, config has %d", len(tr.Channels), cfg.Channels)
	}
	stats := Stats{
		PerChannel:       make([]int64, len(tr.Channels)),
		PerChannelBusy:   make([]int64, len(tr.Channels)),
		PerChannelCounts: make([]Counts, len(tr.Channels)),
	}
	var events []CommandEvent
	if record {
		events = make([]CommandEvent, 0, tr.TotalCommands())
	}
	var busySum float64
	var cs ChannelSim
	for i, ch := range tr.Channels {
		cs.Reset(cfg, ch.Channel)
		for _, cmd := range ch.Commands {
			evStart, evEnd, err := cs.Feed(cmd)
			if err != nil {
				return Stats{}, nil, err
			}
			if record {
				events = append(events, CommandEvent{Channel: ch.Channel, Kind: cmd.Kind, Start: evStart, End: evEnd})
			}
		}
		drain := cs.Drain()
		stats.PerChannel[i] = drain
		stats.PerChannelBusy[i] = cs.Busy()
		if drain > stats.Cycles {
			stats.Cycles = drain
		}
		if drain > 0 {
			busySum += float64(cs.Busy()) / float64(drain)
		}
		stats.PerChannelCounts[i] = cs.Counts()
		stats.Counts.Add(stats.PerChannelCounts[i])
	}
	stats.BusyFraction = busySum / float64(len(tr.Channels))
	stats.Counts.MACs = stats.Counts.ColIOs * int64(cfg.BanksPerChannel) * int64(cfg.MultsPerBank)
	stats.Seconds = cfg.CyclesToSeconds(stats.Cycles)
	return stats, events, nil
}
