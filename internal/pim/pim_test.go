package pim

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := NewtonConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero channels accepted")
	}
	bad = DefaultConfig()
	bad.GlobalBufs = 3
	if err := bad.Validate(); err == nil {
		t.Error("3 global buffers accepted")
	}
	bad = DefaultConfig()
	bad.Timing.TCCDL = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero tCCDL accepted")
	}
}

func TestConfigDerived(t *testing.T) {
	c := DefaultConfig()
	if c.BufElems() != 2048 {
		t.Errorf("BufElems = %d, want 2048 (4KB of fp16)", c.BufElems())
	}
	// 16 banks x 32 colIOs x 16 elements = 8192 weights per activation.
	if c.WeightsPerRowActivation() != 8192 {
		t.Errorf("WeightsPerRowActivation = %d, want 8192", c.WeightsPerRowActivation())
	}
	if c.LanesPerChannel() != 16 {
		t.Errorf("LanesPerChannel = %d, want 16", c.LanesPerChannel())
	}
	if s := c.CyclesToSeconds(1e9); s != 1.0 {
		t.Errorf("1e9 cycles at 1GHz = %v s, want 1", s)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindGWrite: "GWRITE", KindGWrite2: "GWRITE_2", KindGWrite4: "GWRITE_4",
		KindGWriteStrided: "GWRITE_S", KindGAct: "G_ACT", KindComp: "COMP", KindReadRes: "READRES",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if !KindGWriteStrided.IsGWrite() || KindGAct.IsGWrite() {
		t.Error("IsGWrite misclassifies")
	}
}

// Hand-computed single-channel sequence: GWRITE(4 bursts) -> G_ACT ->
// COMP(8 cols) -> READRES(2 bursts), no latency hiding.
func TestSimulateHandComputedSerial(t *testing.T) {
	cfg := NewtonConfig() // hiding off
	tr := &Trace{Channels: []ChannelTrace{{Channel: 0, Commands: []Command{
		{Kind: KindGWrite, Bursts: 4},
		{Kind: KindGAct, NewRow: true},
		{Kind: KindComp, Cols: 8},
		{Kind: KindReadRes, Bursts: 2},
	}}}}
	st, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// GWRITE: 4*2 = 8 cycles -> t=8. G_ACT at 8 (no open row): row ready
	// 8+11=19, t=9. COMP: start max(9,19,8,0)=19, dur 16 -> 35, t=35.
	// READRES: start 35, done 35+11+4 = 50.
	if st.Cycles != 50 {
		t.Fatalf("cycles = %d, want 50", st.Cycles)
	}
	if st.Counts.GWrites != 1 || st.Counts.GActs != 1 || st.Counts.Comps != 1 || st.Counts.ReadRes != 1 {
		t.Fatalf("counts %+v", st.Counts)
	}
	if st.Counts.MACs != 8*16*16 {
		t.Fatalf("MACs = %d", st.Counts.MACs)
	}
}

// With latency hiding the G_ACT overlaps the GWRITE transfer, so the COMP
// can start as soon as both the buffer (cycle 8) and the row (cycle 1+11)
// are ready.
func TestSimulateLatencyHiding(t *testing.T) {
	cfg := DefaultConfig() // hiding on
	tr := &Trace{Channels: []ChannelTrace{{Channel: 0, Commands: []Command{
		{Kind: KindGWrite, Bursts: 4},
		{Kind: KindGAct, NewRow: true},
		{Kind: KindComp, Cols: 8},
		{Kind: KindReadRes, Bursts: 2},
	}}}}
	st, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// GWRITE: buffer ready at 8, t=1. G_ACT: row ready 1+11=12, t=2.
	// COMP: start max(2,12,8)=12, dur 16 -> 28. READRES: 28+11+4 = 43.
	if st.Cycles != 43 {
		t.Fatalf("cycles = %d, want 43", st.Cycles)
	}
}

func TestSimulatePrechargeRespectsTRAS(t *testing.T) {
	cfg := NewtonConfig()
	tr := &Trace{Channels: []ChannelTrace{{Channel: 0, Commands: []Command{
		{Kind: KindGAct, NewRow: true},
		{Kind: KindGAct, NewRow: true},
		{Kind: KindComp, Cols: 1},
	}}}}
	st, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// First G_ACT: row open at 11, t=1. Second: must wait tRAS from row
	// open: pre at max(1, 11+25)=36, ready 36+11+11=58, t=37.
	// COMP: start 58, done 60.
	if st.Cycles != 60 {
		t.Fatalf("cycles = %d, want 60", st.Cycles)
	}
	if st.Counts.NewRows != 2 {
		t.Fatalf("NewRows = %d", st.Counts.NewRows)
	}
}

func TestSimulateMakespanIsMaxChannel(t *testing.T) {
	cfg := DefaultConfig()
	tr := &Trace{Channels: []ChannelTrace{
		{Channel: 0, Commands: []Command{{Kind: KindComp, Cols: 100}}},
		{Channel: 1, Commands: []Command{{Kind: KindComp, Cols: 10}}},
	}}
	st, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 200 {
		t.Fatalf("makespan %d, want 200", st.Cycles)
	}
	if len(st.PerChannel) != 2 || st.PerChannel[0] != 200 || st.PerChannel[1] != 20 {
		t.Fatalf("per-channel %v", st.PerChannel)
	}
}

func TestSimulateErrors(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Simulate(cfg, &Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
	tooMany := &Trace{Channels: make([]ChannelTrace, cfg.Channels+1)}
	if _, err := Simulate(cfg, tooMany); err == nil {
		t.Error("channel overflow accepted")
	}
	bad := &Trace{Channels: []ChannelTrace{{Commands: []Command{{Kind: KindComp, Cols: 0}}}}}
	if _, err := Simulate(cfg, bad); err == nil {
		t.Error("zero-col COMP accepted")
	}
	badCfg := cfg
	badCfg.GlobalBufs = 5
	ok := &Trace{Channels: []ChannelTrace{{Commands: []Command{{Kind: KindComp, Cols: 1}}}}}
	if _, err := Simulate(badCfg, ok); err == nil {
		t.Error("invalid config accepted")
	}
}

// Property: simulated time is monotonic in COMP stream length.
func TestPropertyMonotonicInWork(t *testing.T) {
	cfg := DefaultConfig()
	f := func(aRaw, bRaw uint16) bool {
		a := int(aRaw%1000) + 1
		b := a + int(bRaw%1000)
		mk := func(cols int) int64 {
			tr := &Trace{Channels: []ChannelTrace{{Commands: []Command{
				{Kind: KindGWrite, Bursts: 8},
				{Kind: KindGAct, NewRow: true},
				{Kind: KindComp, Cols: cols},
				{Kind: KindReadRes, Bursts: 2},
			}}}}
			st, err := Simulate(cfg, tr)
			if err != nil {
				return -1
			}
			return st.Cycles
		}
		ta, tb := mk(a), mk(b)
		return ta > 0 && tb >= ta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: latency hiding never makes a trace slower.
func TestPropertyHidingNeverSlower(t *testing.T) {
	f := func(bursts, cols uint8) bool {
		tr := func() *Trace {
			return &Trace{Channels: []ChannelTrace{{Commands: []Command{
				{Kind: KindGWrite, Bursts: int(bursts%64) + 1},
				{Kind: KindGAct, NewRow: true},
				{Kind: KindComp, Cols: int(cols%64) + 1},
				{Kind: KindReadRes, Bursts: 1},
			}}}}
		}
		off := NewtonConfig()
		on := NewtonConfig()
		on.GWriteLatencyHiding = true
		sOff, err1 := Simulate(off, tr())
		sOn, err2 := Simulate(on, tr())
		return err1 == nil && err2 == nil && sOn.Cycles <= sOff.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Refresh modeling stretches kernels by the tRFC/tREFI duty cycle
// (~9.9% at the default GDDR6 intervals) and is off by default.
func TestRefreshModeling(t *testing.T) {
	tr := func() *Trace {
		return &Trace{Channels: []ChannelTrace{{Commands: []Command{
			{Kind: KindGWrite, Bursts: 8},
			{Kind: KindGAct, NewRow: true},
			{Kind: KindComp, Cols: 5000},
			{Kind: KindReadRes, Bursts: 2},
		}}}}
	}
	off := DefaultConfig()
	on := DefaultConfig()
	on.ModelRefresh = true
	sOff, err := Simulate(off, tr())
	if err != nil {
		t.Fatal(err)
	}
	sOn, err := Simulate(on, tr())
	if err != nil {
		t.Fatal(err)
	}
	stretch := float64(sOn.Cycles)/float64(sOff.Cycles) - 1
	if stretch < 0.08 || stretch > 0.12 {
		t.Fatalf("refresh stretch %.3f, want ~0.099 (tRFC 350 / (tREFI-tRFC) 3550)", stretch)
	}
	bad := DefaultConfig()
	bad.ModelRefresh = true
	bad.Timing.TRFC = 5000 // >= tREFI
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid refresh timing accepted")
	}
}

func TestBusyFraction(t *testing.T) {
	cfg := DefaultConfig()
	tr := &Trace{Channels: []ChannelTrace{{Commands: []Command{{Kind: KindComp, Cols: 50}}}}}
	st, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.BusyFraction != 1.0 {
		t.Fatalf("pure-COMP busy fraction %v, want 1", st.BusyFraction)
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{GWrites: 1, GActs: 2, Comps: 3, ReadRes: 4, ColIOs: 5, GWBursts: 6, RRBursts: 7, NewRows: 8, MACs: 9}
	b := a
	a.Add(b)
	if a.GWrites != 2 || a.MACs != 18 || a.NewRows != 16 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestTraceTotalCommands(t *testing.T) {
	tr := &Trace{Channels: []ChannelTrace{
		{Commands: make([]Command, 3)},
		{Commands: make([]Command, 5)},
	}}
	if tr.TotalCommands() != 8 {
		t.Fatalf("TotalCommands = %d", tr.TotalCommands())
	}
}

// Bank ping-pong hides G_ACT latency behind the COMP stream of the
// previous row and never slows a trace down.
func TestBankPingPong(t *testing.T) {
	mk := func() *Trace {
		var cmds []Command
		cmds = append(cmds, Command{Kind: KindGWrite, Bursts: 8})
		for i := 0; i < 10; i++ {
			cmds = append(cmds, Command{Kind: KindGAct, NewRow: true})
			cmds = append(cmds, Command{Kind: KindComp, Cols: 32})
		}
		cmds = append(cmds, Command{Kind: KindReadRes, Bursts: 2})
		return &Trace{Channels: []ChannelTrace{{Commands: cmds}}}
	}
	plain := DefaultConfig()
	pp := DefaultConfig()
	pp.BankPingPong = true
	sPlain, err := Simulate(plain, mk())
	if err != nil {
		t.Fatal(err)
	}
	sPP, err := Simulate(pp, mk())
	if err != nil {
		t.Fatal(err)
	}
	if sPP.Cycles >= sPlain.Cycles {
		t.Fatalf("ping-pong (%d) not faster than lockstep (%d)", sPP.Cycles, sPlain.Cycles)
	}
	// The saving is roughly the hidden activation time: 9 overlapped
	// activations x ~(tRP+tRCD) bounded by the tRAS window.
	saved := sPlain.Cycles - sPP.Cycles
	if saved < 9*10 {
		t.Fatalf("saving %d cycles implausibly small", saved)
	}
}
