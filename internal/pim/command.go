package pim

import "fmt"

// Kind identifies a PIM command (paper §4.1). GWRITE moves activation data
// into a global buffer, G_ACT activates a weight row across banks, COMP
// streams column I/Os through the per-bank MAC trees, and READRES drains
// the result latches.
type Kind uint8

const (
	// KindGWrite pushes input data into one global buffer.
	KindGWrite Kind = iota
	// KindGWrite2 fills two global buffers with a single command.
	KindGWrite2
	// KindGWrite4 fills four global buffers with a single command.
	KindGWrite4
	// KindGWriteStrided gathers non-contiguous segments in one command
	// (the §4.1 strided GWRITE extension).
	KindGWriteStrided
	// KindGAct activates one weight row in all banks of a channel.
	KindGAct
	// KindComp streams column I/Os through the MAC units.
	KindComp
	// KindReadRes reads accumulated results out of the result latches.
	KindReadRes
)

func (k Kind) String() string {
	switch k {
	case KindGWrite:
		return "GWRITE"
	case KindGWrite2:
		return "GWRITE_2"
	case KindGWrite4:
		return "GWRITE_4"
	case KindGWriteStrided:
		return "GWRITE_S"
	case KindGAct:
		return "G_ACT"
	case KindComp:
		return "COMP"
	case KindReadRes:
		return "READRES"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsGWrite reports whether the kind is any GWRITE variant.
func (k Kind) IsGWrite() bool {
	return k == KindGWrite || k == KindGWrite2 || k == KindGWrite4 || k == KindGWriteStrided
}

// Command is one PIM command in a channel's trace. Consecutive identical
// operations are aggregated: a COMP command carries the number of column
// I/Os it streams back-to-back.
type Command struct {
	Kind Kind
	// Bursts is the number of 32-byte data bursts moved (GWRITE variants
	// and READRES).
	Bursts int
	// Cols is the number of column I/Os streamed by a COMP command.
	Cols int
	// NewRow marks a G_ACT that targets a row different from the one
	// currently open, requiring a precharge first.
	NewRow bool
}

// ChannelTrace is the ordered command stream of one PIM channel.
type ChannelTrace struct {
	Channel  int
	Commands []Command
}

// Trace is a complete PIM kernel: one command stream per participating
// channel. Channels execute independently and in parallel; the kernel
// completes when the slowest channel drains.
type Trace struct {
	Channels []ChannelTrace
}

// TotalCommands returns the number of commands across all channels.
func (t *Trace) TotalCommands() int {
	n := 0
	for _, ch := range t.Channels {
		n += len(ch.Commands)
	}
	return n
}

// Counts aggregates per-kind command counts across all channels, with
// COMP expanded to column I/O count and GWRITE/READRES to burst count.
type Counts struct {
	GWrites  int64 // GWRITE commands (all variants)
	GActs    int64
	Comps    int64 // COMP commands
	ReadRes  int64
	ColIOs   int64 // total column I/Os streamed
	GWBursts int64 // total GWRITE data bursts
	RRBursts int64 // total READRES data bursts
	NewRows  int64 // activations that required a precharge
	MACs     int64 // derived: ColIOs * banks * mults (filled by Stats)
}

// Scale returns the counts multiplied by n (every field scales linearly,
// the derived MACs included).
func (c Counts) Scale(n int64) Counts {
	return Counts{
		GWrites:  c.GWrites * n,
		GActs:    c.GActs * n,
		Comps:    c.Comps * n,
		ReadRes:  c.ReadRes * n,
		ColIOs:   c.ColIOs * n,
		GWBursts: c.GWBursts * n,
		RRBursts: c.RRBursts * n,
		NewRows:  c.NewRows * n,
		MACs:     c.MACs * n,
	}
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.GWrites += other.GWrites
	c.GActs += other.GActs
	c.Comps += other.Comps
	c.ReadRes += other.ReadRes
	c.ColIOs += other.ColIOs
	c.GWBursts += other.GWBursts
	c.RRBursts += other.RRBursts
	c.NewRows += other.NewRows
	c.MACs += other.MACs
}

// Sub subtracts other from c, field by field. Snapshot deltas (counts
// accumulated between two points of one simulation) use it.
func (c *Counts) Sub(other Counts) {
	c.GWrites -= other.GWrites
	c.GActs -= other.GActs
	c.Comps -= other.Comps
	c.ReadRes -= other.ReadRes
	c.ColIOs -= other.ColIOs
	c.GWBursts -= other.GWBursts
	c.RRBursts -= other.RRBursts
	c.NewRows -= other.NewRows
	c.MACs -= other.MACs
}

// CountOf tallies the commands in one channel trace.
func CountOf(ct ChannelTrace) Counts {
	var c Counts
	for _, cmd := range ct.Commands {
		switch {
		case cmd.Kind.IsGWrite():
			c.GWrites++
			c.GWBursts += int64(cmd.Bursts)
		case cmd.Kind == KindGAct:
			c.GActs++
			if cmd.NewRow {
				c.NewRows++
			}
		case cmd.Kind == KindComp:
			c.Comps++
			c.ColIOs += int64(cmd.Cols)
		case cmd.Kind == KindReadRes:
			c.ReadRes++
			c.RRBursts += int64(cmd.Bursts)
		}
	}
	return c
}
