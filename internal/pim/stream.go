package pim

import "fmt"

// Sink consumes a PIM command stream as it is generated, one channel at a
// time: BeginChannel opens channel ch's stream, Emit appends to it. The
// producer (codegen.Stream) emits channels in ascending order and never
// interleaves them, so implementations need no buffering. Sinks latch
// errors internally (an Emit after a failure is a no-op) and report them
// from their terminal call, keeping the per-command hot path free of
// error-return plumbing.
type Sink interface {
	BeginChannel(ch int)
	Emit(cmd Command)
}

// TraceSink materializes the stream into a Trace — the adapter used
// wherever a command trace is genuinely consumed (dump listings, the
// verify.Trace linter, Chrome-trace event recording).
type TraceSink struct {
	Trace Trace
}

// BeginChannel opens a new channel stream.
func (s *TraceSink) BeginChannel(ch int) {
	s.Trace.Channels = append(s.Trace.Channels, ChannelTrace{Channel: ch})
}

// Emit appends one command to the channel opened last.
func (s *TraceSink) Emit(cmd Command) {
	ct := &s.Trace.Channels[len(s.Trace.Channels)-1]
	ct.Commands = append(ct.Commands, cmd)
}

// streamChannel is one finished channel's accumulated result.
type streamChannel struct {
	id     int
	drain  int64
	busy   int64
	counts Counts
}

// StreamSim is a Sink that simulates the command stream as it arrives,
// fusing command generation into the timing engine: no trace is ever
// materialized, and a probe allocates O(channels) instead of O(commands).
// The per-channel scratch survives Reset, so a pooled or caller-held
// StreamSim makes repeated probes (the mode search's Algorithm 1 loop)
// allocation-free apart from the returned Stats. Not safe for concurrent
// use; pool instances instead of sharing one.
type StreamSim struct {
	cfg      Config
	cs       ChannelSim
	open     bool
	channels []streamChannel
	err      error
}

// NewStreamSim returns a streaming simulator for the configuration.
func NewStreamSim(cfg Config) (*StreamSim, error) {
	s := &StreamSim{}
	if err := s.Reset(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset validates the configuration and clears the simulator for a new
// stream, retaining internal scratch capacity.
func (s *StreamSim) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.cfg = cfg
	s.open = false
	s.channels = s.channels[:0]
	s.err = nil
	return nil
}

// BeginChannel finishes the channel in flight and starts simulating a new
// one.
func (s *StreamSim) BeginChannel(ch int) {
	s.finishChannel()
	if s.err != nil {
		return
	}
	if len(s.channels) >= s.cfg.Channels {
		s.err = fmt.Errorf("pim: trace uses %d channels, config has %d", len(s.channels)+1, s.cfg.Channels)
		return
	}
	s.cs.Reset(s.cfg, ch)
	s.channels = append(s.channels, streamChannel{id: ch})
	s.open = true
}

// Emit feeds one command through the current channel's stepper.
func (s *StreamSim) Emit(cmd Command) {
	if s.err != nil {
		return
	}
	if !s.open {
		s.err = fmt.Errorf("pim: Emit before BeginChannel")
		return
	}
	if _, _, err := s.cs.Feed(cmd); err != nil {
		s.err = err
	}
}

// finishChannel folds the in-flight stepper state into its channel slot.
func (s *StreamSim) finishChannel() {
	if !s.open || s.err != nil {
		return
	}
	c := &s.channels[len(s.channels)-1]
	c.drain = s.cs.Drain()
	c.busy = s.cs.Busy()
	c.counts = s.cs.Counts()
	s.open = false
}

// Finish closes the stream and returns the aggregate statistics — the
// same Stats, field for field, that Simulate computes on the materialized
// equivalent of the stream. The simulator must be Reset before reuse.
func (s *StreamSim) Finish() (Stats, error) {
	s.finishChannel()
	if s.err != nil {
		return Stats{}, s.err
	}
	if len(s.channels) == 0 {
		return Stats{}, fmt.Errorf("pim: empty trace")
	}
	stats := Stats{
		PerChannel:       make([]int64, len(s.channels)),
		PerChannelBusy:   make([]int64, len(s.channels)),
		PerChannelCounts: make([]Counts, len(s.channels)),
	}
	var busySum float64
	for i := range s.channels {
		c := &s.channels[i]
		stats.PerChannel[i] = c.drain
		stats.PerChannelBusy[i] = c.busy
		if c.drain > stats.Cycles {
			stats.Cycles = c.drain
		}
		if c.drain > 0 {
			busySum += float64(c.busy) / float64(c.drain)
		}
		stats.PerChannelCounts[i] = c.counts
		stats.Counts.Add(c.counts)
	}
	stats.BusyFraction = busySum / float64(len(s.channels))
	stats.Counts.MACs = stats.Counts.ColIOs * int64(s.cfg.BanksPerChannel) * int64(s.cfg.MultsPerBank)
	stats.Seconds = s.cfg.CyclesToSeconds(stats.Cycles)
	return stats, nil
}
