// Package pim implements a cycle-level timing simulator for the
// Newton/AiM-style PIM-enabled GDDR6 DRAM described in the paper
// (§2.1, §4.1, Table 1). The simulator executes PIM command traces —
// GWRITE / G_ACT / COMP / READRES sequences — against per-channel bank and
// global-buffer state, honoring DRAM timing parameters. It is the
// replacement for the paper's modified Ramulator.
package pim

import "fmt"

// Timing holds the GDDR6 timing parameters in command-clock cycles
// (Table 1). The paper's table lists the values 2, 11, 11, 11, 2, 25 with
// garbled parameter glyphs; we adopt the standard GDDR6 parameter set that
// matches Newton's description. TREFI/TRFC govern optional refresh
// modeling (off by default to match the paper's command-latency table;
// enable via Config.ModelRefresh for Ramulator-grade accounting).
type Timing struct {
	TCCDL int // column-to-column delay; COMP issue interval
	TRCD  int // row activate to column access
	TRP   int // precharge before activating a different row
	TCL   int // column access (read) latency; READRES initial latency
	TBL   int // burst length in cycles per 32-byte burst
	TRAS  int // minimum row-open time
	TREFI int // average refresh interval (all-bank)
	TRFC  int // refresh cycle time (channel stalled)
}

// DefaultTiming returns the Table 1 timing parameters plus standard GDDR6
// refresh intervals (tREFI 3.9 us, tRFC 350 ns at the 1 GHz sim clock).
func DefaultTiming() Timing {
	return Timing{TCCDL: 2, TRCD: 11, TRP: 11, TCL: 11, TBL: 2, TRAS: 25, TREFI: 3900, TRFC: 350}
}

// Config describes one PIM-enabled memory configuration (Table 1 plus the
// §4.1 extensions).
type Config struct {
	// Channels is the number of PIM-enabled memory channels (the paper's
	// default GPU memory splits 32 channels into 16 GPU + 16 PIM).
	Channels int
	// BanksPerChannel is the number of DRAM banks per channel (16).
	BanksPerChannel int
	// ColumnIOBytes is the width of one column I/O in bytes (256 bits).
	ColumnIOBytes int
	// ColumnIOsPerRow is the number of column I/Os per activated row (32).
	ColumnIOsPerRow int
	// GlobalBufBytes is the size of one global buffer (4 KB).
	GlobalBufBytes int
	// GlobalBufs is the number of global buffers per channel: 1 in Newton,
	// 2 in AiM, 4 in PIMFlow's extension (§4.1).
	GlobalBufs int
	// MultsPerBank is the number of multipliers per bank (16).
	MultsPerBank int
	// BurstBytes is the data-bus burst size in bytes (32).
	BurstBytes int
	// ClockGHz converts cycles to seconds.
	ClockGHz float64

	// GWriteLatencyHiding enables asynchronous G_ACT issue during GWRITE
	// (§4.1): data is fetched from GPU channels while PIM channels
	// activate rows, so the two overlap.
	GWriteLatencyHiding bool

	// ModelRefresh charges periodic all-bank refresh stalls (tRFC every
	// tREFI). Off by default: the paper's Table 1 does not include
	// refresh parameters, and PIM kernels are short relative to tREFI.
	ModelRefresh bool

	// BankPingPong activates weight rows in alternating bank groups, so a
	// G_ACT for the next row overlaps the COMP stream of the current one
	// (GDDR6 provides four bank groups). An extension beyond the paper's
	// Newton++ feature set; off by default to preserve its calibration.
	BankPingPong bool

	Timing Timing
}

// DefaultConfig returns the paper's PIM-side configuration: 16 PIM
// channels of the 32-channel GPU memory, with all PIMFlow command
// extensions enabled (the "Newton++" feature set).
func DefaultConfig() Config {
	return Config{
		Channels:            16,
		BanksPerChannel:     16,
		ColumnIOBytes:       32,
		ColumnIOsPerRow:     32,
		GlobalBufBytes:      4096,
		GlobalBufs:          4,
		MultsPerBank:        16,
		BurstBytes:          32,
		ClockGHz:            1.0,
		GWriteLatencyHiding: true,
		Timing:              DefaultTiming(),
	}
}

// NewtonConfig returns the baseline Newton feature set used by the
// "Newton+" offloading mechanism: one global buffer, no GWRITE latency
// hiding.
func NewtonConfig() Config {
	c := DefaultConfig()
	c.GlobalBufs = 1
	c.GWriteLatencyHiding = false
	return c
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.Channels < 1:
		return fmt.Errorf("pim: Channels %d < 1", c.Channels)
	case c.BanksPerChannel < 1:
		return fmt.Errorf("pim: BanksPerChannel %d < 1", c.BanksPerChannel)
	case c.ColumnIOBytes < 2:
		return fmt.Errorf("pim: ColumnIOBytes %d < 2", c.ColumnIOBytes)
	case c.ColumnIOsPerRow < 1:
		return fmt.Errorf("pim: ColumnIOsPerRow %d < 1", c.ColumnIOsPerRow)
	case c.GlobalBufBytes < c.ColumnIOBytes:
		return fmt.Errorf("pim: GlobalBufBytes %d < ColumnIOBytes", c.GlobalBufBytes)
	case c.GlobalBufs != 1 && c.GlobalBufs != 2 && c.GlobalBufs != 4:
		return fmt.Errorf("pim: GlobalBufs %d not in {1,2,4}", c.GlobalBufs)
	case c.MultsPerBank < 1:
		return fmt.Errorf("pim: MultsPerBank %d < 1", c.MultsPerBank)
	case c.BurstBytes < 1:
		return fmt.Errorf("pim: BurstBytes %d < 1", c.BurstBytes)
	case c.ClockGHz <= 0:
		return fmt.Errorf("pim: ClockGHz %v <= 0", c.ClockGHz)
	}
	t := c.Timing
	if t.TCCDL < 1 || t.TRCD < 1 || t.TRP < 0 || t.TCL < 1 || t.TBL < 1 || t.TRAS < 1 {
		return fmt.Errorf("pim: invalid timing %+v", t)
	}
	if c.ModelRefresh && (t.TREFI < 1 || t.TRFC < 0 || t.TRFC >= t.TREFI) {
		return fmt.Errorf("pim: invalid refresh timing tREFI=%d tRFC=%d", t.TREFI, t.TRFC)
	}
	return nil
}

// BufElems returns the number of fp16 elements one global buffer holds.
func (c Config) BufElems() int { return c.GlobalBufBytes / 2 }

// LanesPerChannel returns the output lanes computed in parallel per
// channel: one output per bank.
func (c Config) LanesPerChannel() int { return c.BanksPerChannel }

// WeightsPerRowActivation returns the number of fp16 weight elements one
// G_ACT exposes per channel: every bank opens one row of
// ColumnIOsPerRow × (ColumnIOBytes/2) elements.
func (c Config) WeightsPerRowActivation() int {
	return c.BanksPerChannel * c.ColumnIOsPerRow * (c.ColumnIOBytes / 2)
}

// CyclesToSeconds converts a cycle count to seconds.
func (c Config) CyclesToSeconds(cycles int64) float64 {
	return float64(cycles) / (c.ClockGHz * 1e9)
}
