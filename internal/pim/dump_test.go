package pim

import (
	"strings"
	"testing"
)

func validTrace() *Trace {
	return &Trace{Channels: []ChannelTrace{{Channel: 0, Commands: []Command{
		{Kind: KindGWrite, Bursts: 4},
		{Kind: KindGAct, NewRow: true},
		{Kind: KindComp, Cols: 8},
		{Kind: KindReadRes, Bursts: 2},
	}}}}
}

func TestTraceValidateAccepts(t *testing.T) {
	if err := validTrace().Validate(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestTraceValidateRejects(t *testing.T) {
	cfg := DefaultConfig()
	cases := map[string]*Trace{
		"empty": {},
		"bad channel": {Channels: []ChannelTrace{{Channel: 99, Commands: []Command{
			{Kind: KindGWrite, Bursts: 1},
		}}}},
		"dup channel": {Channels: []ChannelTrace{
			{Channel: 0, Commands: []Command{{Kind: KindGWrite, Bursts: 1}}},
			{Channel: 0, Commands: []Command{{Kind: KindGWrite, Bursts: 1}}},
		}},
		"comp before gact": {Channels: []ChannelTrace{{Channel: 0, Commands: []Command{
			{Kind: KindGWrite, Bursts: 1},
			{Kind: KindComp, Cols: 1},
		}}}},
		"comp before gwrite": {Channels: []ChannelTrace{{Channel: 0, Commands: []Command{
			{Kind: KindGAct},
			{Kind: KindComp, Cols: 1},
		}}}},
		"comp too wide": {Channels: []ChannelTrace{{Channel: 0, Commands: []Command{
			{Kind: KindGWrite, Bursts: 1},
			{Kind: KindGAct},
			{Kind: KindComp, Cols: 999},
		}}}},
		"zero-burst gwrite": {Channels: []ChannelTrace{{Channel: 0, Commands: []Command{
			{Kind: KindGWrite, Bursts: 0},
		}}}},
		"zero-burst readres": {Channels: []ChannelTrace{{Channel: 0, Commands: []Command{
			{Kind: KindGWrite, Bursts: 1},
			{Kind: KindReadRes, Bursts: 0},
		}}}},
	}
	for name, tr := range cases {
		if err := tr.Validate(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTraceDumpAndSummary(t *testing.T) {
	tr := validTrace()
	var b strings.Builder
	if err := tr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"channel 0", "GWRITE", "G_ACT", "COMP", "READRES", "cols=8"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	s := tr.Summary()
	if !strings.Contains(s, "1 channels") || !strings.Contains(s, "4 commands") {
		t.Errorf("summary %q", s)
	}
}
