package pim

import (
	"fmt"
	"io"
	"strings"
)

// Dump writes a human-readable command trace listing, one channel per
// section — the equivalent of the paper artifact's generated PIM command
// trace files that the Ramulator-based simulator consumed.
func (t *Trace) Dump(w io.Writer) error {
	for _, ch := range t.Channels {
		if _, err := fmt.Fprintf(w, "channel %d: %d commands\n", ch.Channel, len(ch.Commands)); err != nil {
			return err
		}
		for i, cmd := range ch.Commands {
			var detail string
			switch {
			case cmd.Kind.IsGWrite():
				detail = fmt.Sprintf("bursts=%d", cmd.Bursts)
			case cmd.Kind == KindGAct:
				detail = fmt.Sprintf("new_row=%v", cmd.NewRow)
			case cmd.Kind == KindComp:
				detail = fmt.Sprintf("cols=%d", cmd.Cols)
			case cmd.Kind == KindReadRes:
				detail = fmt.Sprintf("bursts=%d", cmd.Bursts)
			}
			if _, err := fmt.Fprintf(w, "  %6d %-9s %s\n", i, cmd.Kind, detail); err != nil {
				return err
			}
		}
	}
	return nil
}

// Validate checks structural invariants of a trace that any correct
// command generator must uphold:
//
//   - every COMP is preceded by at least one G_ACT (a row must be open)
//     and at least one GWRITE (the buffer must hold data) on its channel;
//   - COMP column counts never exceed the column I/Os one activation
//     exposes times the number of global buffers in flight;
//   - no channel index repeats and all are within the configuration.
func (t *Trace) Validate(cfg Config) error {
	if len(t.Channels) == 0 {
		return fmt.Errorf("pim: empty trace")
	}
	seen := map[int]bool{}
	for _, ch := range t.Channels {
		if ch.Channel < 0 || ch.Channel >= cfg.Channels {
			return fmt.Errorf("pim: channel %d outside config (%d channels)", ch.Channel, cfg.Channels)
		}
		if seen[ch.Channel] {
			return fmt.Errorf("pim: duplicate channel %d", ch.Channel)
		}
		seen[ch.Channel] = true
		rowOpen, bufLoaded := false, false
		for i, cmd := range ch.Commands {
			switch {
			case cmd.Kind.IsGWrite():
				if cmd.Bursts <= 0 {
					return fmt.Errorf("pim: channel %d cmd %d: GWRITE with %d bursts", ch.Channel, i, cmd.Bursts)
				}
				bufLoaded = true
			case cmd.Kind == KindGAct:
				rowOpen = true
			case cmd.Kind == KindComp:
				if !rowOpen {
					return fmt.Errorf("pim: channel %d cmd %d: COMP before any G_ACT", ch.Channel, i)
				}
				if !bufLoaded {
					return fmt.Errorf("pim: channel %d cmd %d: COMP before any GWRITE", ch.Channel, i)
				}
				if cmd.Cols <= 0 || cmd.Cols > cfg.ColumnIOsPerRow {
					return fmt.Errorf("pim: channel %d cmd %d: COMP cols %d outside (0,%d]",
						ch.Channel, i, cmd.Cols, cfg.ColumnIOsPerRow)
				}
			case cmd.Kind == KindReadRes:
				if cmd.Bursts <= 0 {
					return fmt.Errorf("pim: channel %d cmd %d: READRES with %d bursts", ch.Channel, i, cmd.Bursts)
				}
			}
		}
	}
	return nil
}

// Summary returns a one-line description of the trace.
func (t *Trace) Summary() string {
	var c Counts
	for _, ch := range t.Channels {
		c.Add(CountOf(ch))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d channels, %d commands: %d GWRITE (%d bursts), %d G_ACT, %d COMP (%d colIOs), %d READRES",
		len(t.Channels), t.TotalCommands(), c.GWrites, c.GWBursts, c.GActs, c.Comps, c.ColIOs, c.ReadRes)
	return b.String()
}
