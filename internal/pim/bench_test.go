package pim_test

import (
	"testing"

	"pimflow/internal/codegen"
	"pimflow/internal/pim"
)

// benchTrace materializes a conv-like layer's command trace (the Fig 10
// MobileNetV2 projection shape) once, outside the timed loop.
func benchTrace(b *testing.B) (pim.Config, *pim.Trace) {
	b.Helper()
	cfg := pim.DefaultConfig()
	w := codegen.Workload{M: 196, K: 576, N: 160, Segments: 3}
	tr, err := codegen.Generate(w, cfg, codegen.DefaultOpts())
	if err != nil {
		b.Fatal(err)
	}
	return cfg, tr
}

// BenchmarkSimulate measures the batch simulator over a materialized
// trace — the O(channels) Stats allocation is all that should remain.
func BenchmarkSimulate(b *testing.B) {
	cfg, tr := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pim.Simulate(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChannelSimFeed measures the per-command stepper cost on one
// channel's stream: the simulator's innermost hot loop.
func BenchmarkChannelSimFeed(b *testing.B) {
	cfg, tr := benchTrace(b)
	cmds := tr.Channels[0].Commands
	var cs pim.ChannelSim
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Reset(cfg, 0)
		for _, cmd := range cmds {
			if _, _, err := cs.Feed(cmd); err != nil {
				b.Fatal(err)
			}
		}
		_ = cs.Drain()
	}
}
