package pimflow_test

import (
	"strings"
	"testing"

	"pimflow"
)

func TestModelNamesAndBuild(t *testing.T) {
	names := pimflow.ModelNames()
	if len(names) < 7 {
		t.Fatalf("only %d models registered", len(names))
	}
	for _, n := range names {
		if _, err := pimflow.BuildModel(n, pimflow.ModelOptions{Light: true}); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := pimflow.BuildModel("nope", pimflow.ModelOptions{}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestCompileAndRunFacade(t *testing.T) {
	model, err := pimflow.BuildModel("toy", pimflow.ModelOptions{Light: true})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := pimflow.Compile(model, pimflow.DefaultConfig(pimflow.PolicyPIMFlow))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := compiled.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalCycles <= 0 || rep.Seconds <= 0 {
		t.Fatalf("empty report %+v", rep)
	}
	e, err := pimflow.Energy(rep)
	if err != nil {
		t.Fatal(err)
	}
	if e.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestExecuteConvenience(t *testing.T) {
	model, err := pimflow.BuildModel("toy", pimflow.ModelOptions{Light: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pimflow.Execute(model, pimflow.PolicyNewtonPlusPlus)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalCycles <= 0 {
		t.Fatal("empty report")
	}
}

func TestCustomGraphBuilderFacade(t *testing.T) {
	b := pimflow.NewGraphBuilder("custom", 1, 8, 8, 4)
	b.PointwiseConv(16).Relu()
	b.GlobalAvgPool().Flatten().Gemm(3).Softmax()
	model, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	in := pimflow.NewTensor(1, 8, 8, 4)
	in.FillRandom(1)
	out, err := pimflow.Infer(model, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Data) != 3 {
		t.Fatalf("output %v", out.Shape)
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := pimflow.Experiments()
	if len(exps) != 16 {
		t.Fatalf("%d experiments, want 16 (11 figures + 2 tables + 3 analyses)", len(exps))
	}
	if _, err := pimflow.ExperimentByID("fig9"); err != nil {
		t.Fatal(err)
	}
	if _, err := pimflow.ExperimentByID("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestSummaryFormat(t *testing.T) {
	model, err := pimflow.BuildModel("toy", pimflow.ModelOptions{Light: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := pimflow.Summary(model, pimflow.PolicyPIMFlow)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "toy") || !strings.Contains(s, "PIMFlow") {
		t.Fatalf("summary %q", s)
	}
}

// Smoke-run the fast experiment harnesses end to end through the facade
// (slow harnesses are covered by the benchmarks).
func TestFastExperimentsProduceSeries(t *testing.T) {
	for _, id := range []string{"fig1", "fig3", "fig8", "table1"} {
		e, err := pimflow.ExperimentByID(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if id != "table1" && len(res.Series) == 0 {
			t.Errorf("%s: no series", id)
		}
		if !strings.Contains(res.Table(), res.ID) {
			t.Errorf("%s: table missing id", id)
		}
	}
}

func TestAnalyzeLayersFacade(t *testing.T) {
	model, err := pimflow.BuildModel("toy", pimflow.ModelOptions{Light: true})
	if err != nil {
		t.Fatal(err)
	}
	layers, err := pimflow.AnalyzeLayers(model)
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != 5 {
		t.Fatalf("%d layers, want 5", len(layers))
	}
}

func TestApplyPlanFacade(t *testing.T) {
	model, err := pimflow.BuildModel("toy", pimflow.ModelOptions{Light: true})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := pimflow.Compile(model, pimflow.DefaultConfig(pimflow.PolicyPIMFlow))
	if err != nil {
		t.Fatal(err)
	}
	reapplied, err := pimflow.ApplyPlan(model, compiled.Plan)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := compiled.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := reapplied.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalCycles != r2.TotalCycles {
		t.Fatalf("replayed plan differs: %d vs %d cycles", r1.TotalCycles, r2.TotalCycles)
	}
}

func TestFoldBatchNormFacadeNoOp(t *testing.T) {
	model, err := pimflow.BuildModel("mobilenet-v2", pimflow.ModelOptions{Light: true})
	if err != nil {
		t.Fatal(err)
	}
	// The zoo builds folded graphs already; folding must be a no-op.
	n, err := pimflow.FoldBatchNorm(model)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("folded %d BNs in a pre-folded graph", n)
	}
}
