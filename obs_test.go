package pimflow_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"pimflow"
	"pimflow/internal/obs"
)

// TestTracedMobileNetMDDP is the observability acceptance test: a
// MobileNetV2 MD-DP compile+run with a Trace and Metrics attached must
// produce valid Chrome trace-event JSON containing overlapping GPU and
// PIM spans on the simulated timeline, per-channel PIM command events,
// and search probe spans; the metrics registry must capture the search
// and runtime counters.
func TestTracedMobileNetMDDP(t *testing.T) {
	model, err := pimflow.BuildModel("mobilenet-v2", pimflow.ModelOptions{Light: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := pimflow.DefaultConfig(pimflow.PolicyMDDP)
	cfg.Trace = pimflow.NewTrace()
	cfg.Metrics = pimflow.NewMetrics()
	compiled, err := pimflow.Compile(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := compiled.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalCycles <= 0 {
		t.Fatal("empty report")
	}

	var buf bytes.Buffer
	if err := cfg.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	type span struct{ start, end float64 }
	var gpu, pim []span
	channelEvents, probeSpans, phaseSpans := 0, 0, 0
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.PID == obs.PIDTimeline && ev.Phase == "X" && ev.TID == obs.TIDGPU:
			gpu = append(gpu, span{ev.TS, ev.TS + ev.Dur})
		case ev.PID == obs.PIDTimeline && ev.Phase == "X" && ev.TID == obs.TIDPIM:
			pim = append(pim, span{ev.TS, ev.TS + ev.Dur})
		case ev.PID == obs.PIDTimeline && ev.TID >= obs.TIDChannelBase:
			channelEvents++
		case ev.PID == obs.PIDCompile && ev.Cat == "search.probe":
			probeSpans++
		case ev.PID == obs.PIDCompile && ev.Cat == "search.phase":
			phaseSpans++
		}
	}
	if len(gpu) == 0 || len(pim) == 0 {
		t.Fatalf("want spans on both device tracks, got %d GPU / %d PIM", len(gpu), len(pim))
	}
	overlap := false
	for _, g := range gpu {
		for _, p := range pim {
			if g.start < p.end && p.start < g.end {
				overlap = true
			}
		}
	}
	if !overlap {
		t.Error("no overlapping GPU/PIM spans: MD-DP parallelism is not visible in the trace")
	}
	if channelEvents == 0 {
		t.Error("no per-channel PIM command events")
	}
	if probeSpans == 0 {
		t.Error("no search probe spans")
	}
	if phaseSpans == 0 {
		t.Error("no search phase spans")
	}

	// Export determinism: serializing the same trace twice is identical.
	var again bytes.Buffer
	if err := cfg.Trace.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("trace serialization is not deterministic")
	}

	snap := cfg.Metrics.Snapshot()
	for _, c := range []string{"search.probes", "search.runs", "runtime.nodes", "pim.commands.comp"} {
		if snap.Counters[c] <= 0 {
			t.Errorf("counter %q = %d, want > 0", c, snap.Counters[c])
		}
	}
	if snap.Gauges["runtime.total_cycles"] != float64(rep.TotalCycles) {
		t.Errorf("runtime.total_cycles gauge = %v, want %d", snap.Gauges["runtime.total_cycles"], rep.TotalCycles)
	}
	if h, ok := snap.Histograms["search.probes_per_layer"]; !ok || h.Count == 0 {
		t.Error("search.probes_per_layer histogram missing or empty")
	}
	if h, ok := snap.Histograms["pim.channel_utilization"]; !ok || h.Count == 0 {
		t.Error("pim.channel_utilization histogram missing or empty")
	}
}

// TestTracedRunMatchesUntraced pins the zero-interference contract: a
// traced compile+run must produce the identical schedule as an untraced
// one.
func TestTracedRunMatchesUntraced(t *testing.T) {
	model, err := pimflow.BuildModel("mobilenet-v2", pimflow.ModelOptions{Light: true})
	if err != nil {
		t.Fatal(err)
	}
	run := func(traced bool) int64 {
		cfg := pimflow.DefaultConfig(pimflow.PolicyMDDP)
		if traced {
			cfg.Trace = pimflow.NewTrace()
			cfg.Metrics = pimflow.NewMetrics()
		}
		compiled, err := pimflow.Compile(model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := compiled.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.TotalCycles
	}
	plain, traced := run(false), run(true)
	if plain != traced {
		t.Errorf("traced run changed the schedule: %d vs %d cycles", traced, plain)
	}
}
