// Benchmarks regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`; each iteration
// reruns the full harness, so -benchtime=1x is a sensible choice).
// Headline numbers are attached as custom metrics.
package pimflow_test

import (
	"testing"

	"pimflow"
)

// benchExperiment runs one registered harness per iteration. Besides the
// harness's headline metric it reports the shared profile cache's
// activity over the timed loop: sims/op is the number of hardware
// profiles actually simulated, cached/op the number answered from the
// cache (across iterations and across previously-run benchmarks, since
// all harnesses share one store).
func benchExperiment(b *testing.B, id string, metric func(*pimflow.ExperimentResult) (string, float64)) {
	b.Helper()
	e, err := pimflow.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cache := pimflow.ExperimentProfileCache()
	before := cache.Stats()
	var last *pimflow.ExperimentResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	delta := cache.Stats().Sub(before)
	b.ReportMetric(float64(delta.Misses)/float64(b.N), "sims/op")
	b.ReportMetric(float64(delta.Saved())/float64(b.N), "cached/op")
	if metric != nil && last != nil {
		name, v := metric(last)
		b.ReportMetric(v, name)
	}
}

// valueAt fetches series[s].Values[i], defensively.
func valueAt(r *pimflow.ExperimentResult, s, i int) float64 {
	if s < len(r.Series) && i < len(r.Series[s].Values) {
		return r.Series[s].Values[i]
	}
	return 0
}

func BenchmarkFig01_Breakdown(b *testing.B) {
	benchExperiment(b, "fig1", func(r *pimflow.ExperimentResult) (string, float64) {
		return "conv-frac-enetb0", valueAt(r, 0, 0)
	})
}

func BenchmarkFig03_ChannelScaling(b *testing.B) {
	benchExperiment(b, "fig3", func(r *pimflow.ExperimentResult) (string, float64) {
		// ResNet50 slowdown with 16 of 24 channels (paper: small).
		return "resnet50-16ch-vs-24ch", valueAt(r, 3, 2)
	})
}

func BenchmarkFig08_Validation(b *testing.B) {
	benchExperiment(b, "fig8", func(r *pimflow.ExperimentResult) (string, float64) {
		return "pim-speedup-b1", valueAt(r, 0, 0)
	})
}

func BenchmarkFig09_EndToEnd(b *testing.B) {
	benchExperiment(b, "fig9", func(r *pimflow.ExperimentResult) (string, float64) {
		// MobileNetV2 end-to-end PIMFlow speedup (last column).
		for _, s := range r.Series {
			if s.Name == "MBNetV2/e2e" {
				return "mbnetv2-pimflow-speedup", s.Values[len(s.Values)-1]
			}
		}
		return "mbnetv2-pimflow-speedup", 0
	})
}

func BenchmarkFig10_Layerwise(b *testing.B) {
	benchExperiment(b, "fig10", nil)
}

func BenchmarkFig11_Pipeline(b *testing.B) {
	benchExperiment(b, "fig11", func(r *pimflow.ExperimentResult) (string, float64) {
		// The mean pipe/MD-DP ratio of the viable pattern (the in-band
		// column with the most candidates).
		best, bestCount := 0.0, 0.0
		for i := range r.Series[0].Values {
			if c := valueAt(r, 1, i); c > bestCount {
				bestCount = c
				best = valueAt(r, 0, i)
			}
		}
		return "viable-pipe-md-ratio", best
	})
}

func BenchmarkFig12_Energy(b *testing.B) {
	benchExperiment(b, "fig12", func(r *pimflow.ExperimentResult) (string, float64) {
		// Mean PIMFlow energy across models (1.0 = baseline).
		var sum float64
		for _, s := range r.Series {
			sum += s.Values[len(s.Values)-1]
		}
		return "mean-pimflow-energy", sum / float64(len(r.Series))
	})
}

func BenchmarkFig13_ChannelRatio(b *testing.B) {
	benchExperiment(b, "fig13", func(r *pimflow.ExperimentResult) (string, float64) {
		// ENetB0/PIMFlow speedup at the 16/16 division.
		return "enetb0-16pim-speedup", valueAt(r, 1, 3)
	})
}

func BenchmarkFig14_CmdOpts(b *testing.B) {
	benchExperiment(b, "fig14", func(r *pimflow.ExperimentResult) (string, float64) {
		// Mean combined-optimization speedup (last row, last column).
		s := r.Series[len(r.Series)-1]
		return "newton++-vs-newton+", s.Values[len(s.Values)-1]
	})
}

func BenchmarkFig15_Stages(b *testing.B) {
	benchExperiment(b, "fig15", func(r *pimflow.ExperimentResult) (string, float64) {
		return "8stages-vs-2stages", valueAt(r, 0, 4)
	})
}

func BenchmarkFig16_ModelSize(b *testing.B) {
	benchExperiment(b, "fig16", func(r *pimflow.ExperimentResult) (string, float64) {
		// EfficientNet-B6 PIMFlow speedup (last series, last value).
		s := r.Series[len(r.Series)-1]
		return "enetb6-speedup", s.Values[len(s.Values)-1]
	})
}

func BenchmarkTable2_SplitRatios(b *testing.B) {
	benchExperiment(b, "table2", func(r *pimflow.ExperimentResult) (string, float64) {
		return "full-offload-frac", valueAt(r, 0, 0)
	})
}

// Ablation benches for design choices DESIGN.md calls out.

// BenchmarkAblationRatioRefine measures the paper's future-work
// auto-tuning: refining MD-DP ratios from 10% to 2% steps (the paper's
// footnote reports +1.13% for EfficientNet-B0).
func BenchmarkAblationRatioRefine(b *testing.B) {
	model, err := pimflow.BuildModel("efficientnet-v1-b0", pimflow.ModelOptions{Light: true})
	if err != nil {
		b.Fatal(err)
	}
	coarse := pimflow.DefaultConfig(pimflow.PolicyMDDP)
	fine := pimflow.DefaultConfig(pimflow.PolicyMDDP)
	fine.RefineRatio = true
	var gain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c1, err := pimflow.Compile(model, coarse)
		if err != nil {
			b.Fatal(err)
		}
		c2, err := pimflow.Compile(model, fine)
		if err != nil {
			b.Fatal(err)
		}
		r1, err := c1.Run()
		if err != nil {
			b.Fatal(err)
		}
		r2, err := c2.Run()
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(r1.TotalCycles)/float64(r2.TotalCycles) - 1
	}
	b.StopTimer()
	b.ReportMetric(gain*100, "refine-gain-%")
}

// BenchmarkAblationChannelCount sweeps total PIM capability at a fixed
// GPU share to isolate PIM-side scaling (a DESIGN.md design choice: how
// many channels a kernel's trace spreads over).
func BenchmarkAblationChannelCount(b *testing.B) {
	model, err := pimflow.BuildModel("mobilenet-v2", pimflow.ModelOptions{Light: true})
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pc := range []int{8, 16} {
			cfg := pimflow.DefaultConfig(pimflow.PolicyNewtonPlusPlus)
			cfg.PIMChannels = pc
			c, err := pimflow.Compile(model, cfg)
			if err != nil {
				b.Fatal(err)
			}
			r, err := c.Run()
			if err != nil {
				b.Fatal(err)
			}
			last = r.Seconds * 1e3
		}
	}
	b.StopTimer()
	b.ReportMetric(last, "ms-at-16pim")
}

// BenchmarkAblationGPUBaselineKnobs compares the default (write-through,
// direct-conv) GPU baseline against a Winograd + write-back library model
// on VGG16 — the two GPU-model knobs EXPERIMENTS.md discusses.
func BenchmarkAblationGPUBaselineKnobs(b *testing.B) {
	model, err := pimflow.BuildModel("vgg-16", pimflow.ModelOptions{Light: true})
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain := pimflow.DefaultConfig(pimflow.PolicyBaseline)
		fancy := pimflow.DefaultConfig(pimflow.PolicyBaseline)
		fancy.GPU.WinogradConvs = true
		fancy.GPU.WriteBack = true
		c1, err := pimflow.Compile(model, plain)
		if err != nil {
			b.Fatal(err)
		}
		c2, err := pimflow.Compile(model, fancy)
		if err != nil {
			b.Fatal(err)
		}
		r1, err := c1.Run()
		if err != nil {
			b.Fatal(err)
		}
		r2, err := c2.Run()
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(r1.TotalCycles) / float64(r2.TotalCycles)
	}
	b.StopTimer()
	b.ReportMetric(ratio, "winograd+wb-speedup")
}

// Component microbenchmarks: the building blocks downstream users pay for.

func BenchmarkSearchMobileNetV2(b *testing.B) {
	model, err := pimflow.BuildModel("mobilenet-v2", pimflow.ModelOptions{Light: true})
	if err != nil {
		b.Fatal(err)
	}
	cfg := pimflow.DefaultConfig(pimflow.PolicyPIMFlow)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pimflow.Compile(model, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchMobileNetV2Warm is the same search against a pre-warmed
// profile store: every PIM trace simulation and GPU timing is recalled,
// so the delta to BenchmarkSearchMobileNetV2 is the cost of profiling
// itself (the win of persisting the cache across compiler runs).
func BenchmarkSearchMobileNetV2Warm(b *testing.B) {
	model, err := pimflow.BuildModel("mobilenet-v2", pimflow.ModelOptions{Light: true})
	if err != nil {
		b.Fatal(err)
	}
	cfg := pimflow.DefaultConfig(pimflow.PolicyPIMFlow)
	cfg.Profiles = pimflow.NewProfileStore()
	if _, err := pimflow.Compile(model, cfg); err != nil { // warm the store
		b.Fatal(err)
	}
	warmed := cfg.Profiles.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pimflow.Compile(model, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	delta := cfg.Profiles.Stats().Sub(warmed)
	b.ReportMetric(float64(delta.Misses)/float64(b.N), "sims/op")
	b.ReportMetric(float64(delta.Saved())/float64(b.N), "cached/op")
}

// BenchmarkSearchAllModelsCold compiles every evaluated paper model
// against a cold profile store each iteration — the full Algorithm 1
// cost a user pays the first time they compile each network. The
// pruned/op metric counts ratio grid probes the search discharged with
// the analytic lower bound instead of simulating; sims/op counts the
// PIM/GPU profiles that actually ran.
func BenchmarkSearchAllModelsCold(b *testing.B) {
	names := pimflow.EvaluatedCNNs()
	graphs := make([]*pimflow.Graph, len(names))
	for i, name := range names {
		g, err := pimflow.BuildModel(name, pimflow.ModelOptions{Light: true})
		if err != nil {
			b.Fatal(err)
		}
		graphs[i] = g
	}
	var pruned, sims int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pruned, sims = 0, 0
		for _, g := range graphs {
			cfg := pimflow.DefaultConfig(pimflow.PolicyPIMFlow)
			compiled, err := pimflow.Compile(g, cfg)
			if err != nil {
				b.Fatal(err)
			}
			pruned += compiled.Plan.Cache.Pruned
			sims += compiled.Plan.Cache.Misses
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(pruned), "pruned/op")
	b.ReportMetric(float64(sims), "sims/op")
}

func BenchmarkRuntimeScheduleResNet50(b *testing.B) {
	model, err := pimflow.BuildModel("resnet-50", pimflow.ModelOptions{Light: true})
	if err != nil {
		b.Fatal(err)
	}
	cfg := pimflow.DefaultConfig(pimflow.PolicyPIMFlow)
	compiled, err := pimflow.Compile(model, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compiled.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelBuildVGG16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pimflow.BuildModel("vgg-16", pimflow.ModelOptions{Light: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBankPingPong measures the bank-group ping-pong
// extension (beyond the paper's Newton++): activating the next weight row
// in the alternate bank group while the current row streams COMPs.
func BenchmarkAblationBankPingPong(b *testing.B) {
	model, err := pimflow.BuildModel("mobilenet-v2", pimflow.ModelOptions{Light: true})
	if err != nil {
		b.Fatal(err)
	}
	var gain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain := pimflow.DefaultConfig(pimflow.PolicyPIMFlow)
		pp := pimflow.DefaultConfig(pimflow.PolicyPIMFlow)
		pp.PIMBase.BankPingPong = true
		c1, err := pimflow.Compile(model, plain)
		if err != nil {
			b.Fatal(err)
		}
		c2, err := pimflow.Compile(model, pp)
		if err != nil {
			b.Fatal(err)
		}
		r1, err := c1.Run()
		if err != nil {
			b.Fatal(err)
		}
		r2, err := c2.Run()
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(r1.TotalCycles)/float64(r2.TotalCycles) - 1
	}
	b.StopTimer()
	b.ReportMetric(gain*100, "pingpong-gain-%")
}
