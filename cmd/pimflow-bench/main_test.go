package main

import "testing"

func TestParseLine(t *testing.T) {
	name, r, ok := parseLine("BenchmarkFig13_ChannelRatio-8  \t1\t1815530219 ns/op\t5086341584 B/op\t 1075671 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if name != "BenchmarkFig13_ChannelRatio" {
		t.Errorf("name %q, want CPU suffix stripped", name)
	}
	if r.NsPerOp != 1815530219 || r.BytesPerOp != 5086341584 || r.AllocsPerOp != 1075671 {
		t.Errorf("parsed %+v", r)
	}

	// Without -benchmem only ns/op appears.
	name, r, ok = parseLine("BenchmarkModelBuildVGG16 \t 10000\t105869 ns/op")
	if !ok || name != "BenchmarkModelBuildVGG16" || r.NsPerOp != 105869 || r.BytesPerOp != 0 {
		t.Errorf("parsed %q %+v ok=%v", name, r, ok)
	}

	// Custom b.ReportMetric units land in Extra.
	name, r, ok = parseLine("BenchmarkServeThroughput-8\t5\t210545574 ns/op\t123.4 req/s\t1798466 p50_simcycles\t2515295 p99_simcycles")
	if !ok || name != "BenchmarkServeThroughput" {
		t.Fatalf("serve line parsed %q ok=%v", name, ok)
	}
	if r.Extra["req/s"] != 123.4 || r.Extra["p50_simcycles"] != 1798466 || r.Extra["p99_simcycles"] != 2515295 {
		t.Errorf("extra metrics %+v", r.Extra)
	}

	for _, line := range []string{
		"goos: linux",
		"pkg: pimflow/internal/pim",
		"PASS",
		"ok  \tpimflow\t1.2s",
		"BenchmarkBroken x y",
		"",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("non-benchmark line parsed: %q", line)
		}
	}
}
