package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, r, ok := parseLine("BenchmarkFig13_ChannelRatio-8  \t1\t1815530219 ns/op\t5086341584 B/op\t 1075671 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if name != "BenchmarkFig13_ChannelRatio" {
		t.Errorf("name %q, want CPU suffix stripped", name)
	}
	if r.NsPerOp != 1815530219 || r.BytesPerOp != 5086341584 || r.AllocsPerOp != 1075671 {
		t.Errorf("parsed %+v", r)
	}

	// Without -benchmem only ns/op appears.
	name, r, ok = parseLine("BenchmarkModelBuildVGG16 \t 10000\t105869 ns/op")
	if !ok || name != "BenchmarkModelBuildVGG16" || r.NsPerOp != 105869 || r.BytesPerOp != 0 {
		t.Errorf("parsed %q %+v ok=%v", name, r, ok)
	}

	// Custom b.ReportMetric units land in Extra.
	name, r, ok = parseLine("BenchmarkServeThroughput-8\t5\t210545574 ns/op\t123.4 req/s\t1798466 p50_simcycles\t2515295 p99_simcycles")
	if !ok || name != "BenchmarkServeThroughput" {
		t.Fatalf("serve line parsed %q ok=%v", name, ok)
	}
	if r.Extra["req/s"] != 123.4 || r.Extra["p50_simcycles"] != 1798466 || r.Extra["p99_simcycles"] != 2515295 {
		t.Errorf("extra metrics %+v", r.Extra)
	}

	for _, line := range []string{
		"goos: linux",
		"pkg: pimflow/internal/pim",
		"PASS",
		"ok  \tpimflow\t1.2s",
		"BenchmarkBroken x y",
		"",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("non-benchmark line parsed: %q", line)
		}
	}
}

func TestHigherBetter(t *testing.T) {
	for unit, want := range map[string]bool{
		"req/s": true, "served": true, "requests": true,
		"ns/op": false, "p99_simcycles": false, "allocs/op": false, "shed": false,
	} {
		if got := higherBetter(unit); got != want {
			t.Errorf("higherBetter(%q) = %v, want %v", unit, got, want)
		}
	}
}

func TestMetricFilter(t *testing.T) {
	f := parseMetricFilter("p99_simcycles, Scenario/poisson:served")
	if !f.match("Scenario/bursty", "p99_simcycles") {
		t.Error("bare unit should match every benchmark")
	}
	if !f.match("Scenario/poisson", "served") || f.match("Scenario/bursty", "served") {
		t.Error("qualified entry should match only its benchmark")
	}
	var all metricFilter
	if !all.match("x", "y") {
		t.Error("nil filter should match everything")
	}
}

func writeSnapshot(t *testing.T, path string, doc map[string]map[string]Result) {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	before, after := filepath.Join(dir, "before.json"), filepath.Join(dir, "after.json")
	writeSnapshot(t, before, map[string]map[string]Result{"after": {
		"Scenario/poisson": {NsPerOp: 100, Extra: map[string]float64{"p99_simcycles": 1000, "req/s": 50}},
		"OnlyBefore":       {NsPerOp: 1},
	}})

	// Within tolerance: ok (ns/op noise excluded by the filter).
	writeSnapshot(t, after, map[string]map[string]Result{"after": {
		"Scenario/poisson": {NsPerOp: 500, Extra: map[string]float64{"p99_simcycles": 1050, "req/s": 48}},
	}})
	filter := parseMetricFilter("p99_simcycles,req/s")
	if err := compare(before, after, "after", "after", filter, 0.10); err != nil {
		t.Fatalf("within-tolerance compare failed: %v", err)
	}

	// Lower-better regression: p99 +20%.
	writeSnapshot(t, after, map[string]map[string]Result{"after": {
		"Scenario/poisson": {NsPerOp: 100, Extra: map[string]float64{"p99_simcycles": 1200, "req/s": 50}},
	}})
	if err := compare(before, after, "after", "after", filter, 0.10); err == nil {
		t.Fatal("p99 regression not detected")
	}

	// Higher-better regression: throughput -20%.
	writeSnapshot(t, after, map[string]map[string]Result{"after": {
		"Scenario/poisson": {NsPerOp: 100, Extra: map[string]float64{"p99_simcycles": 1000, "req/s": 40}},
	}})
	if err := compare(before, after, "after", "after", filter, 0.10); err == nil {
		t.Fatal("throughput regression not detected")
	}
	// A throughput *gain* of the same magnitude is fine.
	writeSnapshot(t, after, map[string]map[string]Result{"after": {
		"Scenario/poisson": {NsPerOp: 100, Extra: map[string]float64{"p99_simcycles": 1000, "req/s": 60}},
	}})
	if err := compare(before, after, "after", "after", filter, 0.10); err != nil {
		t.Fatalf("throughput gain flagged: %v", err)
	}

	// Missing section and empty filter matches are errors.
	if err := compare(before, after, "no-such-label", "after", nil, 0.10); err == nil {
		t.Fatal("missing section not an error")
	}
	if err := compare(before, after, "after", "after", parseMetricFilter("no_such_metric"), 0.10); err == nil {
		t.Fatal("empty metric match not an error")
	}
}
