// Command pimflow-bench turns `go test -bench` output into a
// machine-readable performance snapshot. It reads benchmark output on
// stdin, passes it through unchanged to stdout, and merges the parsed
// results into a JSON file keyed by label (e.g. "before" / "after") so
// successive runs build up a comparable record:
//
//	go test -run '^$' -bench . -benchmem ./... | pimflow-bench -label after -out BENCH_PR5.json
//
// Each entry maps the benchmark name (CPU-count suffix stripped) to
// ns/op, B/op, allocs/op, and any custom b.ReportMetric units.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark measurement. Custom metrics reported with
// b.ReportMetric (e.g. the serve throughput benchmark's req/s and
// p50_simcycles) land in Extra keyed by their unit.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkFig13_ChannelRatio-8  1  1815530219 ns/op  5086341584 B/op  1075671 allocs/op
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func parseLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	name := cpuSuffix.ReplaceAllString(fields[0], "")
	var r Result
	seen := false
	// Fields after the iteration count come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[fields[i+1]] = v
			seen = true
		}
	}
	return name, r, seen
}

func run(label, out string) error {
	results := map[string]map[string]Result{}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &results); err != nil {
			return fmt.Errorf("parse existing %s: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	section := results[label]
	if section == nil {
		section = map[string]Result{}
		results[label] = section
	}

	parsed := 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if name, r, ok := parseLine(line); ok {
			section[name] = r
			parsed++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if parsed == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pimflow-bench: recorded %d benchmarks under %q in %s\n", parsed, label, out)
	return nil
}

func main() {
	label := flag.String("label", "after", "section of the JSON file to record results under")
	out := flag.String("out", "BENCH_PR5.json", "JSON snapshot file to merge results into")
	flag.Parse()
	if err := run(*label, *out); err != nil {
		fmt.Fprintln(os.Stderr, "pimflow-bench:", err)
		os.Exit(1)
	}
}
