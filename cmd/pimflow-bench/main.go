// Command pimflow-bench turns `go test -bench` output into a
// machine-readable performance snapshot. It reads benchmark output on
// stdin, passes it through unchanged to stdout, and merges the parsed
// results into a JSON file keyed by label (e.g. "before" / "after") so
// successive runs build up a comparable record:
//
//	go test -run '^$' -bench . -benchmem ./... | pimflow-bench -label after -out BENCH_PR5.json
//
// Each entry maps the benchmark name (CPU-count suffix stripped) to
// ns/op, B/op, allocs/op, and any custom b.ReportMetric units.
//
// With -scenario, the command instead drives the trace-driven load
// harness directly (no stdin): it replays the named builtin scenarios
// (comma-separated, or "all") through a fresh server and merges each
// replay's throughput and simulated-latency percentiles into the same
// snapshot file as a pseudo-benchmark entry:
//
//	pimflow-bench -scenario bursty -out BENCH_PR6.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"

	"pimflow/internal/load"
)

// Result is one benchmark measurement. Custom metrics reported with
// b.ReportMetric (e.g. the serve throughput benchmark's req/s and
// p50_simcycles) land in Extra keyed by their unit.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkFig13_ChannelRatio-8  1  1815530219 ns/op  5086341584 B/op  1075671 allocs/op
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func parseLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	name := cpuSuffix.ReplaceAllString(fields[0], "")
	var r Result
	seen := false
	// Fields after the iteration count come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[fields[i+1]] = v
			seen = true
		}
	}
	return name, r, seen
}

// loadSection reads the snapshot file (if any) and returns the full
// result map plus the section for the given label, creating it if
// needed.
func loadSection(label, out string) (map[string]map[string]Result, map[string]Result, error) {
	results := map[string]map[string]Result{}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &results); err != nil {
			return nil, nil, fmt.Errorf("parse existing %s: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	section := results[label]
	if section == nil {
		section = map[string]Result{}
		results[label] = section
	}
	return results, section, nil
}

func saveSnapshot(out string, results map[string]map[string]Result) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

// runScenarios replays builtin load scenarios and records each replay
// as a pseudo-benchmark entry ("Scenario/<name>"): ns/op is the
// wall-clock replay time, everything else lands in Extra.
func runScenarios(label, out, names string) error {
	if names == "all" {
		names = "poisson,diurnal,bursty"
	}
	results, section, err := loadSection(label, out)
	if err != nil {
		return err
	}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		sc, err := load.Builtin(name)
		if err != nil {
			return err
		}
		rep, err := load.Run(sc)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		section["Scenario/"+name] = Result{
			NsPerOp: rep.WallSeconds * 1e9,
			Extra: map[string]float64{
				"req/s":           rep.ReqPerSec,
				"requests":        float64(rep.Requests),
				"served":          float64(rep.Served),
				"shed":            float64(rep.Shed),
				"slo_miss":        float64(rep.SLOMiss),
				"p50_simcycles":   float64(rep.P50),
				"p99_simcycles":   float64(rep.P99),
				"p999_simcycles":  float64(rep.P999),
				"mean_batch":      rep.MeanBatch,
				"makespan_cycles": float64(rep.MakespanCycles),
			},
		}
		fmt.Printf("scenario %-8s served %5d shed %5d slo_miss %5d p50 %d p99 %d p999 %d cycles (%.0f req/s)\n",
			name, rep.Served, rep.Shed, rep.SLOMiss, rep.P50, rep.P99, rep.P999, rep.ReqPerSec)
	}
	if err := saveSnapshot(out, results); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pimflow-bench: recorded scenarios under %q in %s\n", label, out)
	return nil
}

func run(label, out string) error {
	results, section, err := loadSection(label, out)
	if err != nil {
		return err
	}

	parsed := 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if name, r, ok := parseLine(line); ok {
			section[name] = r
			parsed++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if parsed == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}

	if err := saveSnapshot(out, results); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pimflow-bench: recorded %d benchmarks under %q in %s\n", parsed, label, out)
	return nil
}

func main() {
	label := flag.String("label", "after", "section of the JSON file to record results under")
	out := flag.String("out", "BENCH_PR6.json", "JSON snapshot file to merge results into")
	scenario := flag.String("scenario", "", "replay builtin load scenarios (comma-separated, or \"all\") instead of parsing go-test bench output")
	flag.Parse()
	var err error
	if *scenario != "" {
		err = runScenarios(*label, *out, *scenario)
	} else {
		err = run(*label, *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimflow-bench:", err)
		os.Exit(1)
	}
}
