// Command pimflow-bench turns `go test -bench` output into a
// machine-readable performance snapshot. It reads benchmark output on
// stdin, passes it through unchanged to stdout, and merges the parsed
// results into a JSON file keyed by label (e.g. "before" / "after") so
// successive runs build up a comparable record:
//
//	go test -run '^$' -bench . -benchmem ./... | pimflow-bench -label after -out BENCH_PR5.json
//
// Each entry maps the benchmark name (CPU-count suffix stripped) to
// ns/op, B/op, allocs/op, and any custom b.ReportMetric units.
//
// With -scenario, the command instead drives the trace-driven load
// harness directly (no stdin): it replays the named builtin scenarios
// (comma-separated, or "all") through a fresh server and merges each
// replay's throughput, simulated-latency percentiles, and attributed
// per-stage percentile splits into the same snapshot file as a
// pseudo-benchmark entry; -trace additionally writes a Chrome trace with
// one lane per in-flight request, and -certify records each replay's
// schedule certificate and fails unless it passes every SR-* rule
// (verify.Schedule):
//
//	pimflow-bench -scenario poisson -certify -out BENCH_PR7.json
//
// With -compare, the command diffs two snapshot files and exits nonzero
// when a metric regressed beyond -threshold (CI gating):
//
//	pimflow-bench -compare -metrics p99_simcycles,served BENCH_PR6.json BENCH_PR7.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"pimflow/internal/fleet"
	"pimflow/internal/load"
	"pimflow/internal/obs"
)

// Result is one benchmark measurement. Custom metrics reported with
// b.ReportMetric (e.g. the serve throughput benchmark's req/s and
// p50_simcycles) land in Extra keyed by their unit.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkFig13_ChannelRatio-8  1  1815530219 ns/op  5086341584 B/op  1075671 allocs/op
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func parseLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	name := cpuSuffix.ReplaceAllString(fields[0], "")
	var r Result
	seen := false
	// Fields after the iteration count come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[fields[i+1]] = v
			seen = true
		}
	}
	return name, r, seen
}

// loadSection reads the snapshot file (if any) and returns the full
// result map plus the section for the given label, creating it if
// needed.
func loadSection(label, out string) (map[string]map[string]Result, map[string]Result, error) {
	results := map[string]map[string]Result{}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &results); err != nil {
			return nil, nil, fmt.Errorf("parse existing %s: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	section := results[label]
	if section == nil {
		section = map[string]Result{}
		results[label] = section
	}
	return results, section, nil
}

func saveSnapshot(out string, results map[string]map[string]Result) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

// runScenarios replays builtin load scenarios and records each replay
// as a pseudo-benchmark entry ("Scenario/<name>"): ns/op is the
// wall-clock replay time, everything else lands in Extra — including the
// attributed stage split of the p50/p99/p999 requests, whose
// <q>_*_cycles extras sum to <q>_simcycles exactly. With tracePath the
// replays share one Chrome trace (request lanes + GPU/PIM timeline,
// execution forced on) written at the end.
func runScenarios(label, out, names, tracePath string, certify bool) error {
	if names == "all" {
		names = "poisson,diurnal,bursty"
	}
	// The fleet scaling sweep: the same workload on 1, 2, and 4 machines.
	names = strings.Replace(names, "fleet,", "fleet1,fleet2,fleet4,", 1)
	if names == "fleet" || strings.HasSuffix(names, ",fleet") {
		names = strings.TrimSuffix(names, "fleet") + "fleet1,fleet2,fleet4"
	}
	results, section, err := loadSection(label, out)
	if err != nil {
		return err
	}
	opts := load.RunOptions{RequestLog: 512, Certify: certify}
	if tracePath != "" {
		opts.Trace = obs.NewTrace()
		opts.Execute = true
	}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if strings.HasPrefix(name, "fleet") {
			if err := runFleetScenario(section, name, certify); err != nil {
				return err
			}
			continue
		}
		sc, err := load.Builtin(name)
		if err != nil {
			return err
		}
		rep, err := load.RunWithOptions(sc, opts)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		extra := map[string]float64{
			"req/s":           rep.ReqPerSec,
			"requests":        float64(rep.Requests),
			"served":          float64(rep.Served),
			"shed":            float64(rep.Shed),
			"slo_miss":        float64(rep.SLOMiss),
			"p50_simcycles":   float64(rep.P50),
			"p99_simcycles":   float64(rep.P99),
			"p999_simcycles":  float64(rep.P999),
			"mean_batch":      rep.MeanBatch,
			"makespan_cycles": float64(rep.MakespanCycles),
		}
		if at := rep.Attributed; at != nil {
			for q, a := range map[string]load.AttributedRequest{"p50": at.P50, "p99": at.P99, "p999": at.P999} {
				extra[q+"_queue_cycles"] = float64(a.Stages.Queue)
				extra[q+"_batch_window_cycles"] = float64(a.Stages.BatchWait)
				extra[q+"_lease_wait_cycles"] = float64(a.Stages.LeaseWait)
				extra[q+"_execute_cycles"] = float64(a.Stages.Execute)
			}
		}
		section["Scenario/"+name] = Result{NsPerOp: rep.WallSeconds * 1e9, Extra: extra}
		fmt.Printf("scenario %-8s served %5d shed %5d slo_miss %5d p50 %d p99 %d p999 %d cycles (%.0f req/s)\n",
			name, rep.Served, rep.Shed, rep.SLOMiss, rep.P50, rep.P99, rep.P999, rep.ReqPerSec)
		if at := rep.Attributed; at != nil {
			fmt.Printf("  p99 split: batch_window %d + lease_wait %d + execute %d = %d cycles\n",
				at.P99.Stages.BatchWait, at.P99.Stages.LeaseWait, at.P99.Stages.Execute, at.P99.LatencyCycles)
		}
		if rep.Certified {
			extra["certified_leases"] = float64(rep.CertifiedLeases)
			fmt.Printf("  schedule certificate: %d leases verified clean (SR-*)\n", rep.CertifiedLeases)
		}
	}
	if err := saveSnapshot(out, results); err != nil {
		return err
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := opts.Trace.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pimflow-bench: wrote Chrome trace to %s\n", tracePath)
	}
	fmt.Fprintf(os.Stderr, "pimflow-bench: recorded scenarios under %q in %s\n", label, out)
	return nil
}

// fleetBuiltin builds the fleet scaling scenario for a machine count:
// the builtin Poisson workload replayed through a fleet whose hot
// models replicate onto every machine. The per-machine stacks are
// identical, so comparing fleet1/fleet2/fleet4 isolates what the router
// tier buys (JSQ over replicas) and costs (nothing, on the virtual
// timeline) as the fleet grows.
func fleetBuiltin(machines int) (fleet.Scenario, error) {
	base, err := load.Builtin("poisson")
	if err != nil {
		return fleet.Scenario{}, err
	}
	base.Name = fmt.Sprintf("fleet%d", machines)
	// Push the arrival rate past one machine's saturation point so added
	// replicas visibly pull the tail in.
	base.RatePerMCycle = 8
	sc := fleet.Scenario{
		Scenario: base,
		Machines: machines,
		Replicas: map[string]int{},
		Certify:  true,
	}
	for _, m := range base.Models {
		sc.Replicas[m.Name] = machines
	}
	return sc, nil
}

// runFleetScenario replays one fleet scaling point ("fleet1", "fleet2",
// "fleet4") and records it as Scenario/<name>.
func runFleetScenario(section map[string]Result, name string, certify bool) error {
	var machines int
	if _, err := fmt.Sscanf(name, "fleet%d", &machines); err != nil || machines <= 0 {
		return fmt.Errorf("unknown fleet scenario %q (fleet1, fleet2, fleet4, or \"fleet\" for all)", name)
	}
	sc, err := fleetBuiltin(machines)
	if err != nil {
		return err
	}
	sc.Certify = certify || sc.Certify
	rep, err := fleet.Run(sc)
	if err != nil {
		return fmt.Errorf("scenario %s: %w", name, err)
	}
	extra := map[string]float64{
		"req/s":           rep.ReqPerSec,
		"requests":        float64(rep.Requests),
		"served":          float64(rep.Served),
		"shed":            float64(rep.Shed),
		"machines":        float64(machines),
		"p50_simcycles":   float64(rep.P50),
		"p99_simcycles":   float64(rep.P99),
		"p999_simcycles":  float64(rep.P999),
		"makespan_cycles": float64(rep.MakespanCycles),
	}
	if rep.Certified {
		extra["certified_leases"] = float64(rep.CertifiedLeases)
	}
	section["Scenario/"+name] = Result{NsPerOp: rep.WallSeconds * 1e9, Extra: extra}
	fmt.Printf("scenario %-8s served %5d shed %5d p50 %d p99 %d p999 %d cycles (%.0f req/s, %d machines)\n",
		name, rep.Served, rep.Shed, rep.P50, rep.P99, rep.P999, rep.ReqPerSec, machines)
	if rep.Certified {
		fmt.Printf("  fleet certificate: %d leases verified clean (FL-* + SR-*)\n", rep.CertifiedLeases)
	}
	return nil
}

// higherBetter classifies a metric's direction: throughputs and served
// counts regress downward, everything else (latencies, cycles, allocs)
// regresses upward.
func higherBetter(unit string) bool {
	return strings.HasSuffix(unit, "/s") || unit == "served" || unit == "requests"
}

// metricFilter parses the -metrics flag: comma-separated entries, each a
// bare unit ("p99_simcycles", applying to every benchmark) or a
// qualified "Benchmark:unit" pair. Empty matches everything.
type metricFilter map[string]bool

func parseMetricFilter(s string) metricFilter {
	if s == "" {
		return nil
	}
	f := metricFilter{}
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			f[e] = true
		}
	}
	return f
}

func (f metricFilter) match(bench, unit string) bool {
	return f == nil || f[unit] || f[bench+":"+unit]
}

// metricsOf flattens a Result into unit -> value.
func metricsOf(r Result) map[string]float64 {
	m := map[string]float64{"ns/op": r.NsPerOp}
	if r.BytesPerOp > 0 {
		m["B/op"] = float64(r.BytesPerOp)
	}
	if r.AllocsPerOp > 0 {
		m["allocs/op"] = float64(r.AllocsPerOp)
	}
	for unit, v := range r.Extra {
		m[unit] = v
	}
	return m
}

// compare diffs two snapshot files and fails on any metric that
// regressed by more than threshold (fractional; 0.10 = 10%). Only
// benchmarks present in both sections are compared, and only metrics
// the filter admits.
func compare(beforePath, afterPath, beforeLabel, afterLabel string, filter metricFilter, threshold float64) error {
	loadFile := func(path, label string) (map[string]Result, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var doc map[string]map[string]Result
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		section, ok := doc[label]
		if !ok {
			var labels []string
			for l := range doc {
				labels = append(labels, l)
			}
			sort.Strings(labels)
			return nil, fmt.Errorf("%s has no section %q (have %v)", path, label, labels)
		}
		return section, nil
	}
	before, err := loadFile(beforePath, beforeLabel)
	if err != nil {
		return err
	}
	after, err := loadFile(afterPath, afterLabel)
	if err != nil {
		return err
	}

	var names []string
	for name := range before {
		if _, ok := after[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between %s[%s] and %s[%s]", beforePath, beforeLabel, afterPath, afterLabel)
	}

	compared, regressions := 0, 0
	for _, name := range names {
		bm, am := metricsOf(before[name]), metricsOf(after[name])
		var units []string
		for unit := range bm {
			if _, ok := am[unit]; ok && filter.match(name, unit) {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			b, a := bm[unit], am[unit]
			if b == 0 {
				continue // no baseline to regress against
			}
			compared++
			delta := (a - b) / b
			bad := delta > threshold
			if higherBetter(unit) {
				bad = delta < -threshold
			}
			marker := ""
			if bad {
				marker = "  REGRESSION"
				regressions++
			}
			fmt.Printf("%-40s %-24s %14.4g -> %14.4g  %+7.2f%%%s\n", name, unit, b, a, delta*100, marker)
		}
	}
	fmt.Fprintf(os.Stderr, "pimflow-bench: compared %d metrics across %d benchmarks, %d regression(s) beyond %.0f%%\n",
		compared, len(names), regressions, threshold*100)
	if compared == 0 {
		return fmt.Errorf("metric filter matched nothing")
	}
	if regressions > 0 {
		return fmt.Errorf("%d metric(s) regressed by more than %.0f%%", regressions, threshold*100)
	}
	return nil
}

func run(label, out string) error {
	results, section, err := loadSection(label, out)
	if err != nil {
		return err
	}

	parsed := 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if name, r, ok := parseLine(line); ok {
			section[name] = r
			parsed++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if parsed == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}

	if err := saveSnapshot(out, results); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pimflow-bench: recorded %d benchmarks under %q in %s\n", parsed, label, out)
	return nil
}

func main() {
	label := flag.String("label", "after", "section of the JSON file to record results under (compare: section read from the after file)")
	out := flag.String("out", "BENCH_PR7.json", "JSON snapshot file to merge results into")
	scenario := flag.String("scenario", "", "replay builtin load scenarios (comma-separated, or \"all\") instead of parsing go-test bench output")
	tracePath := flag.String("trace", "", "with -scenario: write a Chrome trace (request lanes + GPU/PIM timeline) to this file")
	certify := flag.Bool("certify", false, "with -scenario: record the schedule certificate and fail unless it passes every SR-* rule")
	doCompare := flag.Bool("compare", false, "compare two snapshot files (positional: before.json after.json); exit nonzero on regressions beyond -threshold")
	baselineLabel := flag.String("baseline-label", "after", "with -compare: section read from the before file")
	metrics := flag.String("metrics", "", "with -compare: restrict checks to these metrics (comma-separated units, optionally \"Benchmark:unit\"); empty checks everything")
	threshold := flag.Float64("threshold", 0.10, "with -compare: fractional regression tolerance")
	flag.Parse()
	var err error
	switch {
	case *doCompare:
		if flag.NArg() != 2 {
			err = fmt.Errorf("-compare needs two positional files: before.json after.json")
		} else {
			err = compare(flag.Arg(0), flag.Arg(1), *baselineLabel, *label, parseMetricFilter(*metrics), *threshold)
		}
	case *scenario != "":
		err = runScenarios(*label, *out, *scenario, *tracePath, *certify)
	default:
		err = run(*label, *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimflow-bench:", err)
		os.Exit(1)
	}
}
