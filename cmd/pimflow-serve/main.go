// Command pimflow-serve runs the concurrent inference service over the
// simulated GPU+PIM machine as an HTTP JSON API:
//
//	pimflow-serve -addr :8080 -load mobilenet-v2,resnet-50 -policy PIMFlow
//
//	GET    /healthz                  liveness + drain state
//	GET    /metrics                  Prometheus-style text dump
//	GET    /v1/models                list loaded models
//	POST   /v1/models/{name}         load a model (JSON ModelSpec body)
//	DELETE /v1/models/{name}         unload a model
//	POST   /v1/models/{name}/infer   run one inference
//
// Each -load entry is name=model, or just a model-zoo name; -policy,
// -channels, and -pim-channels apply to every preload (per-model overrides
// go through the HTTP load API). Inference latency is accounted in
// simulated cycles on one shared virtual timeline: requests whose models
// were compiled onto disjoint channel slices overlap, contending requests
// queue, same-model requests coalesce into batches up to -max-batch.
//
// SIGINT/SIGTERM drains gracefully: queued requests finish, new ones get
// 503, and the profile cache (when -profile-cache is set) is saved.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pimflow/internal/obs"
	"pimflow/internal/profcache"
	"pimflow/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		load       = flag.String("load", "", "comma-separated models to preload (name=model or model)")
		policy     = flag.String("policy", "PIMFlow", "offloading policy for preloaded models")
		channels   = flag.Int("channels", 0, "total memory channels each preload compiles against (0: policy default)")
		pimCh      = flag.Int("pim_channels", 0, "PIM-enabled channels of each preload's slice (0: policy default)")
		machineGPU = flag.Int("machine_gpu", 16, "GPU channel groups of the served machine")
		machinePIM = flag.Int("machine_pim", 16, "PIM channel groups of the served machine")
		queueDepth = flag.Int("queue", 64, "admission queue depth")
		admission  = flag.String("admission", "reject", "backpressure policy when the queue is full: reject | block | shed-oldest")
		workers    = flag.Int("workers", 4, "request-processing goroutines")
		maxBatch   = flag.Int("max_batch", 1, "largest same-model coalesced batch (1: no batching)")
		batchWin   = flag.Duration("batch_window", 0, "extra wall-clock wait for same-model requests to coalesce")
		profFile   = flag.String("profile-cache", "", "JSON profile-cache file: loaded at startup, saved at shutdown")
		drainWait  = flag.Duration("drain", 30*time.Second, "graceful-drain budget at shutdown")
		verbose    = flag.Bool("v", false, "info-level structured logs on stderr")
		vverbose   = flag.Bool("vv", false, "debug-level structured logs on stderr")
	)
	flag.Parse()
	switch {
	case *vverbose:
		obs.SetVerbosity(2)
	case *verbose:
		obs.SetVerbosity(1)
	}
	if err := run(*addr, *load, *policy, *channels, *pimCh, *machineGPU, *machinePIM,
		*queueDepth, *admission, *workers, *maxBatch, *batchWin, *profFile, *drainWait); err != nil {
		fmt.Fprintln(os.Stderr, "pimflow-serve:", err)
		os.Exit(1)
	}
}

func run(addr, load, policy string, channels, pimCh, machineGPU, machinePIM,
	queueDepth int, admission string, workers, maxBatch int,
	batchWin time.Duration, profFile string, drainWait time.Duration) error {
	adm, err := serve.ParseAdmissionPolicy(admission)
	if err != nil {
		return err
	}
	profiles := profcache.New()
	if profFile != "" {
		n, err := profiles.Load(profFile)
		if err != nil {
			return err
		}
		if n > 0 {
			fmt.Printf("profile cache: loaded %d entries from %s\n", n, profFile)
		}
	}
	srv, err := serve.NewServer(serve.Config{
		Machine:     serve.Machine{GPUChannels: machineGPU, PIMChannels: machinePIM},
		QueueDepth:  queueDepth,
		Admission:   adm,
		Workers:     workers,
		MaxBatch:    maxBatch,
		BatchWindow: batchWin,
		Profiles:    profiles,
	})
	if err != nil {
		return err
	}

	for _, spec := range parseLoads(load, policy, channels, pimCh) {
		lm, err := srv.Registry().Load(spec)
		if err != nil {
			return fmt.Errorf("preload %q: %w", spec.Name, err)
		}
		fmt.Printf("loaded %s (model %s, policy %s): solo %d cycles, %d GPU + %d PIM channels, compile %.2fs\n",
			lm.Spec.Name, lm.Spec.Model, lm.Policy, lm.Solo.DurationCycles(),
			lm.Demand.GPU, lm.Demand.PIM, lm.CompileSeconds)
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("serving on %s (machine: %d GPU + %d PIM channel groups, queue %d/%s, %d workers)\n",
			addr, machineGPU, machinePIM, queueDepth, adm, workers)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("received %s, draining (budget %s)\n", s, drainWait)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if profFile != "" {
		if err := profiles.Save(profFile); err != nil {
			return err
		}
		fmt.Printf("profile cache: %s; saved to %s\n", profiles.Stats(), profFile)
	}
	fmt.Println("drained cleanly")
	return nil
}

// parseLoads expands the -load list into model specs. Each entry is
// "name=model" or a bare zoo model name serving under its own name.
func parseLoads(load, policy string, channels, pimCh int) []serve.ModelSpec {
	var specs []serve.ModelSpec
	for _, entry := range strings.Split(load, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, model := entry, entry
		if eq := strings.IndexByte(entry, '='); eq >= 0 {
			name, model = entry[:eq], entry[eq+1:]
		}
		specs = append(specs, serve.ModelSpec{
			Name: name, Model: model, Policy: policy,
			TotalChannels: channels, PIMChannels: pimCh,
		})
	}
	return specs
}
