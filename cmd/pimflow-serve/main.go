// Command pimflow-serve runs the concurrent inference service over the
// simulated GPU+PIM machine as an HTTP JSON API:
//
//	pimflow-serve -addr :8080 -load mobilenet-v2,resnet-50 -policy PIMFlow
//
//	GET    /healthz                  liveness + drain state + per-model latency breakdown
//	GET    /metrics                  Prometheus-style text dump (JSON via Accept or /metrics.json)
//	GET    /debug/requests           request-lifecycle ring (model/slo/outcome/n filters)
//	GET    /v1/models                list loaded models
//	POST   /v1/models/{name}         load a model (JSON ModelSpec body)
//	DELETE /v1/models/{name}         unload a model
//	POST   /v1/models/{name}/infer   run one inference
//
// Each -load entry is name=model (or just a model-zoo name), optionally
// followed by semicolon-separated per-model options:
//
//	-load "gold=mobilenet-v2;slo=gold;batch=8;cycles=200000,bronze=mobilenet-v2;slo=bronze"
//
// with batch=N (max coalesced batch), window=D (wall batching window,
// a Go duration), cycles=N (virtual batching window for pinned-arrival
// traffic), and slo=class (latency class: gold, silver, bronze).
// -policy, -channels, -pim_channels, and the global batching/SLO flags
// (-max_batch, -batch_window, -batch_cycles, -slo) apply to every
// preload that does not override them. Inference latency is accounted
// in simulated cycles on one shared virtual timeline: requests whose
// models were compiled onto disjoint channel slices overlap, contending
// requests queue, same-model requests coalesce into batches.
//
// SIGINT/SIGTERM drains gracefully: queued requests finish, new ones get
// 503, and the profile cache (when -profile-cache is set) is saved. With
// -verify the server records the schedule certificate (every lease, its
// member requests, every release's frontier stamp) and checks the SR-*
// rules at drain, exiting nonzero on any violation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pimflow/internal/obs"
	"pimflow/internal/profcache"
	"pimflow/internal/serve"
	"pimflow/internal/verify"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		load       = flag.String("load", "", "comma-separated models to preload (name=model or model)")
		policy     = flag.String("policy", "PIMFlow", "offloading policy for preloaded models")
		channels   = flag.Int("channels", 0, "total memory channels each preload compiles against (0: policy default)")
		pimCh      = flag.Int("pim_channels", 0, "PIM-enabled channels of each preload's slice (0: policy default)")
		machineGPU = flag.Int("machine_gpu", 16, "GPU channel groups of the served machine")
		machinePIM = flag.Int("machine_pim", 16, "PIM channel groups of the served machine")
		queueDepth = flag.Int("queue", 64, "admission queue depth")
		admission  = flag.String("admission", "reject", "backpressure policy when the queue is full: reject | block | shed-oldest")
		workers    = flag.Int("workers", 4, "request-processing goroutines")
		maxBatch   = flag.Int("max_batch", 1, "largest same-model coalesced batch (1: no batching)")
		batchWin   = flag.Duration("batch_window", 0, "extra wall-clock wait for same-model requests to coalesce")
		batchCyc   = flag.Int64("batch_cycles", 0, "virtual-time batching window for pinned-arrival requests (cycles)")
		sloClass   = flag.String("slo", "", "default latency class for preloads (gold, silver, bronze; empty: best-effort)")
		profFile   = flag.String("profile-cache", "", "JSON profile-cache file: loaded at startup, saved at shutdown")
		requestLog = flag.Int("request_log", 512, "request-lifecycle ring size for /debug/requests and stage histograms (0: tracking off)")
		verifySch  = flag.Bool("verify", false, "record the schedule certificate and check the SR-* rules at drain (nonzero exit on violations)")
		traceFile  = flag.String("trace", "", "Chrome trace file written at shutdown (request lanes + execution timeline)")
		drainWait  = flag.Duration("drain", 30*time.Second, "graceful-drain budget at shutdown")
		verbose    = flag.Bool("v", false, "info-level structured logs on stderr")
		vverbose   = flag.Bool("vv", false, "debug-level structured logs on stderr")
	)
	flag.Parse()
	switch {
	case *vverbose:
		obs.SetVerbosity(2)
	case *verbose:
		obs.SetVerbosity(1)
	}
	if err := run(*addr, *load, *policy, *channels, *pimCh, *machineGPU, *machinePIM,
		*queueDepth, *admission, *workers, *maxBatch, *batchWin, *batchCyc, *sloClass,
		*profFile, *requestLog, *traceFile, *drainWait, *verifySch); err != nil {
		fmt.Fprintln(os.Stderr, "pimflow-serve:", err)
		os.Exit(1)
	}
}

func run(addr, load, policy string, channels, pimCh, machineGPU, machinePIM,
	queueDepth int, admission string, workers, maxBatch int,
	batchWin time.Duration, batchCyc int64, sloClass, profFile string,
	requestLog int, traceFile string, drainWait time.Duration, verifySch bool) error {
	adm, err := serve.ParseAdmissionPolicy(admission)
	if err != nil {
		return err
	}
	profiles := profcache.New()
	if profFile != "" {
		n, err := profiles.Load(profFile)
		if err != nil {
			return err
		}
		if n > 0 {
			fmt.Printf("profile cache: loaded %d entries from %s\n", n, profFile)
		}
	}
	var trace *obs.Trace
	if traceFile != "" {
		trace = obs.NewTrace()
	}
	srv, err := serve.NewServer(serve.Config{
		Machine:           serve.Machine{GPUChannels: machineGPU, PIMChannels: machinePIM},
		QueueDepth:        queueDepth,
		Admission:         adm,
		Workers:           workers,
		MaxBatch:          maxBatch,
		BatchWindow:       batchWin,
		BatchWindowCycles: batchCyc,
		Profiles:          profiles,
		RequestLog:        requestLog,
		Trace:             trace,
		Certify:           verifySch,
	})
	if err != nil {
		return err
	}

	specs, err := parseLoads(load, policy, channels, pimCh, sloClass)
	if err != nil {
		return err
	}
	for _, spec := range specs {
		lm, err := srv.Registry().Load(spec)
		if err != nil {
			return fmt.Errorf("preload %q: %w", spec.Name, err)
		}
		slo := lm.SLO.Name
		if slo == "" {
			slo = "best-effort"
		}
		fmt.Printf("loaded %s (model %s, policy %s, slo %s): solo %d cycles, %d GPU + %d PIM channels, max batch %d, compile %.2fs\n",
			lm.Spec.Name, lm.Spec.Model, lm.Policy, slo, lm.Solo.DurationCycles(),
			lm.Demand.GPU, lm.Demand.PIM, lm.Batch.MaxBatch, lm.CompileSeconds)
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("serving on %s (machine: %d GPU + %d PIM channel groups, queue %d/%s, %d workers)\n",
			addr, machineGPU, machinePIM, queueDepth, adm, workers)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("received %s, draining (budget %s)\n", s, drainWait)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if verifySch {
		cert := srv.Certificate()
		if diags := verify.Schedule(cert); len(diags) > 0 {
			for _, d := range diags {
				fmt.Fprintln(os.Stderr, d)
			}
			return fmt.Errorf("schedule certificate: %d SR-* violation(s) across %d leases", len(diags), len(cert.Leases))
		}
		fmt.Printf("schedule certificate: %d leases, %d requests verified clean (SR-*)\n",
			len(cert.Leases), len(cert.Requests))
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if profFile != "" {
		if err := profiles.Save(profFile); err != nil {
			return err
		}
		fmt.Printf("profile cache: %s; saved to %s\n", profiles.Stats(), profFile)
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := trace.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events written to %s\n", trace.Len(), traceFile)
	}
	fmt.Println("drained cleanly")
	return nil
}

// parseLoads expands the -load list into model specs. Each entry is
// "name=model" (or a bare zoo model name serving under its own name),
// optionally followed by semicolon-separated per-model options:
// batch=N, window=D (Go duration), cycles=N, slo=class.
func parseLoads(load, policy string, channels, pimCh int, sloClass string) ([]serve.ModelSpec, error) {
	var specs []serve.ModelSpec
	for _, entry := range strings.Split(load, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ";")
		name, model := parts[0], parts[0]
		if eq := strings.IndexByte(parts[0], '='); eq >= 0 {
			name, model = parts[0][:eq], parts[0][eq+1:]
		}
		spec := serve.ModelSpec{
			Name: name, Model: model, Policy: policy,
			TotalChannels: channels, PIMChannels: pimCh,
			SLO: sloClass,
		}
		for _, opt := range parts[1:] {
			opt = strings.TrimSpace(opt)
			if opt == "" {
				continue
			}
			key, val, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("load entry %q: option %q is not key=value", entry, opt)
			}
			switch key {
			case "batch":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("load entry %q: batch: %v", entry, err)
				}
				spec.MaxBatch = n
			case "window":
				d, err := time.ParseDuration(val)
				if err != nil {
					return nil, fmt.Errorf("load entry %q: window: %v", entry, err)
				}
				spec.BatchWindowMillis = d.Milliseconds()
			case "cycles":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("load entry %q: cycles: %v", entry, err)
				}
				spec.BatchWindowCycles = n
			case "slo":
				spec.SLO = val
			default:
				return nil, fmt.Errorf("load entry %q: unknown option %q (batch, window, cycles, slo)", entry, key)
			}
		}
		specs = append(specs, spec)
	}
	return specs, nil
}
