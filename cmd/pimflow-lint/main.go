// Command pimflow-lint runs the internal/lint type-aware analyzer
// suite over the module. The suite encodes the serving stack's
// concurrency and determinism conventions as checkable LT-* rules —
// no host-clock reads on virtual-time paths, Enabled-guarded logging,
// mutex-annotated field discipline, errors.Is for sentinels,
// deterministic map iteration, constant metric keys, context-first
// signatures, and WaitGroup-tracked goroutines. See DESIGN.md §15 for
// the full catalogue and the //lint:ignore suppression syntax.
//
// Usage:
//
//	pimflow-lint [-rules] [dir]
//
// With no directory argument the whole module containing the current
// directory is linted — running from a subdirectory no longer silently
// restricts the walk to that subtree. With a directory argument, the
// module containing *that* directory is linted. testdata/, vendor/,
// hidden directories, and generated files are skipped.
//
// Findings print as file:line:col: [RULE] message; any finding exits
// 1, operational errors exit 2.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pimflow/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw *os.File) int {
	fs := flag.NewFlagSet("pimflow-lint", flag.ContinueOnError)
	fs.SetOutput(errw)
	listRules := fs.Bool("rules", false, "print the rule catalogue and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listRules {
		for _, r := range lint.Rules() {
			fmt.Fprintf(out, "%-17s %s\n", r.ID, r.Doc)
		}
		return 0
	}
	dir := "."
	if fs.NArg() > 0 {
		dir = fs.Arg(0)
	}
	findings, err := lintModule(dir)
	if err != nil {
		fmt.Fprintln(errw, "pimflow-lint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(out, relativized(f))
	}
	if len(findings) > 0 {
		fmt.Fprintf(errw, "pimflow-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// lintModule locates the module containing dir, type-checks every
// package under its root, and runs the full analyzer suite.
func lintModule(dir string) ([]lint.Finding, error) {
	root, err := lint.FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	l, err := lint.NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		return nil, err
	}
	var findings []lint.Finding
	for _, pkg := range pkgs {
		findings = append(findings, lint.Run(pkg, lint.All())...)
	}
	return findings, nil
}

// relativized renders a finding with the file path relative to the
// working directory when possible, keeping CLI output short.
func relativized(f lint.Finding) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, f.Pos.Filename); err == nil && len(rel) < len(f.Pos.Filename) {
			f.Pos.Filename = rel
		}
	}
	return f.String()
}
