// Command pimflow-lint enforces repository conventions that go vet
// cannot express, using nothing but the standard library's go/ast:
//
//   - no-wallclock: packages that model the simulated timeline
//     (internal/pim, internal/runtime) must not read the host clock.
//     Simulated cycles are the only notion of time there; a stray
//     time.Now/Since/Sleep silently couples simulation results to host
//     load. (internal/obs wraps wall-clock spans for the profiler and is
//     exempt by design.)
//
//   - guarded-logging: obs.L().Debug/Info/Warn/Error calls evaluate their
//     key-value arguments before the disabled-logger check inside slog
//     can reject the record, so every call site must sit inside an
//     if obs.Enabled(...) { ... } guard. Unguarded calls allocate and
//     format on every execution even with logging off.
//
// Usage: pimflow-lint [dir ...] (default: the current directory tree).
// Findings print as file:line:col: [rule] message; any finding exits 1.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// simulatedPackages are the import-path suffixes where wall-clock reads
// are banned: their only timeline is the simulated cycle counter.
var simulatedPackages = []string{
	"internal/pim",
	"internal/runtime",
}

// issue is one lint finding.
type issue struct {
	pos  token.Position
	rule string
	msg  string
}

func (i issue) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", i.pos.Filename, i.pos.Line, i.pos.Column, i.rule, i.msg)
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var issues []issue
	for _, root := range roots {
		found, err := lintTree(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimflow-lint:", err)
			os.Exit(2)
		}
		issues = append(issues, found...)
	}
	for _, is := range issues {
		fmt.Println(is)
	}
	if len(issues) > 0 {
		fmt.Fprintf(os.Stderr, "pimflow-lint: %d issue(s)\n", len(issues))
		os.Exit(1)
	}
}

// lintTree walks a directory tree and lints every non-test Go file.
func lintTree(root string) ([]issue, error) {
	var issues []issue
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "vendor":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		issues = append(issues, lintFile(fset, f, inSimulatedPackage(path))...)
		return nil
	})
	return issues, err
}

// inSimulatedPackage reports whether a file path falls under one of the
// simulated-timeline package trees.
func inSimulatedPackage(path string) bool {
	slashed := filepath.ToSlash(path)
	for _, pkg := range simulatedPackages {
		if strings.Contains(slashed, pkg+"/") {
			return true
		}
	}
	return false
}

// lintFile runs both rules over one parsed file. The simulated flag
// enables the wall-clock ban.
func lintFile(fset *token.FileSet, f *ast.File, simulated bool) []issue {
	var issues []issue
	if f.Name.Name == "obs" {
		return nil // obs implements the wall-clock spans and the guard itself
	}
	if simulated {
		issues = append(issues, checkWallClock(fset, f)...)
	}
	issues = append(issues, checkLogGuards(fset, f)...)
	return issues
}

// checkWallClock flags host-clock reads in simulated-timeline packages.
func checkWallClock(fset *token.FileSet, f *ast.File) []issue {
	var issues []issue
	banned := map[string]bool{"Now": true, "Since": true, "Until": true, "Sleep": true}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" && banned[sel.Sel.Name] {
			issues = append(issues, issue{
				pos:  fset.Position(sel.Pos()),
				rule: "no-wallclock",
				msg: fmt.Sprintf("time.%s in a simulated-timeline package; model time in cycles instead",
					sel.Sel.Name),
			})
		}
		return true
	})
	return issues
}

// checkLogGuards flags obs.L().<Level>(...) calls that are not lexically
// inside an if statement whose condition calls an Enabled check. The
// guard keeps the call's argument construction off the fast path when
// logging is disabled.
func checkLogGuards(fset *token.FileSet, f *ast.File) []issue {
	// First pass: collect the body spans of guarding if statements.
	type span struct{ from, to token.Pos }
	var guards []span
	ast.Inspect(f, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !mentionsEnabled(ifs.Cond) {
			return true
		}
		guards = append(guards, span{ifs.Body.Pos(), ifs.Body.End()})
		return true
	})
	guarded := func(p token.Pos) bool {
		for _, g := range guards {
			if p >= g.from && p < g.to {
				return true
			}
		}
		return false
	}
	// Second pass: every obs.L().X(...) call must fall in a guard span.
	var issues []issue
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isObsLogCall(call) {
			return true
		}
		if !guarded(call.Pos()) {
			issues = append(issues, issue{
				pos:  fset.Position(call.Pos()),
				rule: "guarded-logging",
				msg:  "obs.L() log call outside an if obs.Enabled(...) guard builds its arguments even when logging is off",
			})
		}
		return true
	})
	return issues
}

// mentionsEnabled reports whether an expression calls some Enabled
// check (obs.Enabled, Trace.Enabled, ...), possibly inside a larger
// boolean condition.
func mentionsEnabled(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fn.Sel.Name == "Enabled" {
				found = true
			}
		case *ast.Ident:
			if fn.Name == "Enabled" {
				found = true
			}
		}
		return !found
	})
	return found
}

// isObsLogCall matches obs.L().Debug/Info/Warn/Error/Log(...).
func isObsLogCall(call *ast.CallExpr) bool {
	method, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch method.Sel.Name {
	case "Debug", "Info", "Warn", "Error", "Log":
	default:
		return false
	}
	inner, ok := method.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	l, ok := inner.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := l.X.(*ast.Ident)
	return ok && pkg.Name == "obs" && l.Sel.Name == "L"
}
