package main

import (
	"strings"
	"testing"

	"pimflow/internal/lint"
)

// TestRepoIsClean is the linter's acceptance gate: the repository it
// ships in must pass the full analyzer suite, regardless of which
// subdirectory the run starts from (lintModule walks up to go.mod).
func TestRepoIsClean(t *testing.T) {
	findings, err := lintModule(".")
	if err != nil {
		t.Fatalf("lintModule: %v", err)
	}
	var msgs []string
	for _, f := range findings {
		msgs = append(msgs, f.String())
	}
	if len(findings) != 0 {
		t.Fatalf("repository has lint findings:\n%s", strings.Join(msgs, "\n"))
	}
}

// TestModuleRootDiscovery checks a run from a nested package directory
// lints the whole module, not the subtree: the loader must resolve the
// same module root from here and from two levels up.
func TestModuleRootDiscovery(t *testing.T) {
	here, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	up, err := lint.FindModuleRoot("../..")
	if err != nil {
		t.Fatal(err)
	}
	if here != up {
		t.Fatalf("module root differs by start dir: %q vs %q", here, up)
	}
}

// TestRuleCatalogueComplete pins the suite shape the CLI advertises:
// at least the eight LT-* analyzers from the issue are present.
func TestRuleCatalogueComplete(t *testing.T) {
	want := []string{
		lint.RuleWallClock, lint.RuleGuardedLog, lint.RuleGuardedField,
		lint.RuleSentinelErr, lint.RuleMapOrder, lint.RuleMetricKey,
		lint.RuleCtxFirst, lint.RuleGoroutine,
	}
	have := map[string]bool{}
	for _, a := range lint.All() {
		have[a.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("analyzer %s missing from suite", id)
		}
	}
	if len(lint.All()) < 8 {
		t.Errorf("suite has %d analyzers, want >= 8", len(lint.All()))
	}
}
