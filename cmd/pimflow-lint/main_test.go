package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func lintSource(t *testing.T, src string, simulated bool) []issue {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return lintFile(fset, f, simulated)
}

func TestWallClockFlaggedInSimulatedPackage(t *testing.T) {
	src := `package pim
import "time"
func now() time.Time { return time.Now() }
`
	issues := lintSource(t, src, true)
	if len(issues) != 1 || issues[0].rule != "no-wallclock" {
		t.Fatalf("want one no-wallclock issue, got %v", issues)
	}
	if got := lintSource(t, src, false); len(got) != 0 {
		t.Fatalf("non-simulated package should allow time.Now, got %v", got)
	}
}

func TestWallClockVariants(t *testing.T) {
	src := `package runtime
import "time"
func wait(t0 time.Time) {
	time.Sleep(time.Millisecond)
	_ = time.Since(t0)
}
`
	issues := lintSource(t, src, true)
	if len(issues) != 2 {
		t.Fatalf("want 2 issues (Sleep, Since), got %v", issues)
	}
}

func TestUnguardedLogFlagged(t *testing.T) {
	src := `package search
import "pimflow/internal/obs"
func f(n int) {
	obs.L().Info("hello", "n", n)
}
`
	issues := lintSource(t, src, false)
	if len(issues) != 1 || issues[0].rule != "guarded-logging" {
		t.Fatalf("want one guarded-logging issue, got %v", issues)
	}
}

func TestGuardedLogAccepted(t *testing.T) {
	src := `package search
import (
	"log/slog"
	"pimflow/internal/obs"
)
func f(n int) {
	if obs.Enabled(slog.LevelDebug) {
		obs.L().Debug("hello", "n", n)
	}
	if n > 0 && obs.Enabled(slog.LevelInfo) {
		obs.L().Info("positive", "n", n)
	}
}
`
	if issues := lintSource(t, src, false); len(issues) != 0 {
		t.Fatalf("guarded calls should pass, got %v", issues)
	}
}

func TestObsPackageExempt(t *testing.T) {
	src := `package obs
import "time"
func stamp() time.Time { return time.Now() }
`
	if issues := lintSource(t, src, true); len(issues) != 0 {
		t.Fatalf("obs package should be exempt, got %v", issues)
	}
}

func TestSimulatedPackageDetection(t *testing.T) {
	cases := map[string]bool{
		"internal/pim/command.go":     true,
		"internal/runtime/runtime.go": true,
		"internal/search/run.go":      false,
		"internal/obs/trace.go":       false,
	}
	for path, want := range cases {
		if got := inSimulatedPackage(path); got != want {
			t.Errorf("inSimulatedPackage(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestRepoIsClean(t *testing.T) {
	// The linter's own acceptance gate: the repository it ships in must
	// pass it. Lints the module from the package directory's grandparent.
	issues, err := lintTree("../..")
	if err != nil {
		t.Fatalf("lintTree: %v", err)
	}
	var msgs []string
	for _, is := range issues {
		msgs = append(msgs, is.String())
	}
	if len(issues) != 0 {
		t.Fatalf("repository has lint issues:\n%s", strings.Join(msgs, "\n"))
	}
}
