// Command pimflow-experiments regenerates the tables and figures of the
// paper's evaluation section on the simulated hardware.
//
//	pimflow-experiments              run everything
//	pimflow-experiments fig9 table2  run selected experiments
//	pimflow-experiments -list        list experiment ids
//	pimflow-experiments -out FILE    also write the report to FILE
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pimflow"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		out      = flag.String("out", "", "also write the report to this file")
		profFile = flag.String("profile-cache", "", "JSON profile-cache file: loaded before the harnesses run, saved after")
		metrics  = flag.String("metrics", "", "write compiler/runtime metrics as JSON to this file")
		verbose  = flag.Bool("v", false, "info-level structured logs on stderr")
		vverbose = flag.Bool("vv", false, "debug-level structured logs on stderr")
	)
	flag.Parse()
	switch {
	case *vverbose:
		pimflow.SetVerbosity(2)
	case *verbose:
		pimflow.SetVerbosity(1)
	}
	if *list {
		for _, e := range pimflow.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}
	var runners []pimflow.Experiment
	if flag.NArg() == 0 {
		runners = pimflow.Experiments()
	} else {
		for _, id := range flag.Args() {
			e, err := pimflow.ExperimentByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pimflow-experiments:", err)
				os.Exit(1)
			}
			runners = append(runners, e)
		}
	}
	var mreg *pimflow.Metrics
	if *metrics != "" {
		mreg = pimflow.NewMetrics()
		pimflow.SetExperimentMetrics(mreg)
	}
	cache := pimflow.ExperimentProfileCache()
	if *profFile != "" {
		n, err := cache.Load(*profFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimflow-experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("profile cache: loaded %d entries from %s\n", n, *profFile)
	}
	// Cache counters go to stdout only: the -out report must stay
	// byte-identical whether or not a warm cache was supplied.
	// A failing experiment does not abort the sweep: the remaining
	// harnesses still run (and the report, cache, and metrics are still
	// written), every failure is reported, and the exit status is nonzero.
	var report strings.Builder
	var failures []string
	for _, e := range runners {
		start := time.Now()
		before := cache.Stats()
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimflow-experiments: %s: %v\n", e.ID, err)
			failures = append(failures, fmt.Sprintf("%s: %v", e.ID, err))
			continue
		}
		text := res.Table()
		fmt.Print(text)
		delta := cache.Stats().Sub(before)
		fmt.Printf("(%s in %v; profile cache: %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond), delta)
		report.WriteString(text)
		report.WriteByte('\n')
	}
	fmt.Printf("profile cache totals: %s\n", cache.Stats())
	if *profFile != "" {
		if err := cache.Save(*profFile); err != nil {
			fmt.Fprintln(os.Stderr, "pimflow-experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("profile cache saved to %s\n", *profFile)
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pimflow-experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if mreg != nil {
		f, err := os.Create(*metrics)
		if err == nil {
			err = mreg.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimflow-experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *metrics)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "pimflow-experiments: %d of %d experiments failed:\n", len(failures), len(runners))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
}
