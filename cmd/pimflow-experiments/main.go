// Command pimflow-experiments regenerates the tables and figures of the
// paper's evaluation section on the simulated hardware.
//
//	pimflow-experiments              run everything
//	pimflow-experiments fig9 table2  run selected experiments
//	pimflow-experiments -list        list experiment ids
//	pimflow-experiments -out FILE    also write the report to FILE
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pimflow"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		out      = flag.String("out", "", "also write the report to this file")
		profFile = flag.String("profile-cache", "", "JSON profile-cache file: loaded before the harnesses run, saved after")
	)
	flag.Parse()
	if *list {
		for _, e := range pimflow.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}
	var runners []pimflow.Experiment
	if flag.NArg() == 0 {
		runners = pimflow.Experiments()
	} else {
		for _, id := range flag.Args() {
			e, err := pimflow.ExperimentByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pimflow-experiments:", err)
				os.Exit(1)
			}
			runners = append(runners, e)
		}
	}
	cache := pimflow.ExperimentProfileCache()
	if *profFile != "" {
		n, err := cache.Load(*profFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimflow-experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("profile cache: loaded %d entries from %s\n", n, *profFile)
	}
	// Cache counters go to stdout only: the -out report must stay
	// byte-identical whether or not a warm cache was supplied.
	var report strings.Builder
	for _, e := range runners {
		start := time.Now()
		before := cache.Stats()
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimflow-experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		text := res.Table()
		fmt.Print(text)
		delta := cache.Stats().Sub(before)
		fmt.Printf("(%s in %v; profile cache: %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond), delta)
		report.WriteString(text)
		report.WriteByte('\n')
	}
	fmt.Printf("profile cache totals: %s\n", cache.Stats())
	if *profFile != "" {
		if err := cache.Save(*profFile); err != nil {
			fmt.Fprintln(os.Stderr, "pimflow-experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("profile cache saved to %s\n", *profFile)
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pimflow-experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *out)
	}
}
