// Command pimflow mirrors the paper artifact's top-level script (§A.5):
//
//	pimflow -m=profile -t=split    -n=<net>   profile MD-DP candidates
//	pimflow -m=profile -t=pipeline -n=<net>   profile pipelining candidates
//	pimflow -m=solve   -n=<net>               compute the optimal plan
//	pimflow -m=run     -n=<net> [--gpu_only]  execute the transformed model
//	pimflow -m=stats   -n=<net>               print the model graph summary
//	pimflow -m=verify  -n=<net|all>           statically verify the model
//
// The verify mode runs the static verification layer without simulating:
// the graph-IR invariant checker on the model before compilation and
// after every transformation pass, then the PIM command-stream linter on
// every offloaded layer's generated trace. -n=all sweeps every built-in
// model; a non-empty diagnostic list exits nonzero. The -verify flag
// enables the same checks as a debug gate inside the other modes.
//
// The <net> option accepts efficientnet-v1-b0, mobilenet-v2, mnasnet-1.0,
// resnet-50, vgg-16, bert-base, or toy. Profiling results and the solved
// plan are stored as JSON metadata under -workdir (default .pimflow) and
// reused by later steps, like the artifact's metadata log files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"pimflow"
)

func main() {
	var (
		mode     = flag.String("m", "", "mode: profile | solve | run | stats")
		kind     = flag.String("t", "split", "profile kind: split | pipeline (profile mode)")
		net      = flag.String("n", "toy", "model name")
		gpuOnly  = flag.Bool("gpu_only", false, "run the GPU-only baseline (run mode)")
		policy   = flag.String("policy", "PIMFlow", "offloading mechanism: Baseline | Newton+ | Newton++ | PIMFlow-md | PIMFlow-pl | PIMFlow")
		workdir  = flag.String("workdir", ".pimflow", "metadata directory")
		pimCh    = flag.Int("pim_channels", 16, "PIM-enabled channels in the 32-channel memory")
		timeline = flag.String("timeline", "", "write the schedule as a Chrome trace JSON to this file (run mode)")
		ratio    = flag.Float64("ratio_step", 0.1, "MD-DP split-ratio search interval (paper: 0.1; footnote explores 0.02)")
		stages   = flag.Int("stages", 2, "pipeline stage count (paper: 2)")
		refine   = flag.Bool("refine", false, "enable fine-grained ratio refinement (future-work auto-tuning)")
		verify   = flag.Bool("verify", false, "run the static verifier after every transform pass and on every generated PIM trace (debug gate)")
		gantt    = flag.Bool("gantt", false, "print an ASCII device timeline after running (run mode)")
		profFile = flag.String("profile-cache", "", "JSON profile-cache file: loaded before the run, saved after (the metadata log)")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the compile+execute pipeline to this file (open in Perfetto or chrome://tracing)")
		metrics  = flag.String("metrics", "", "write compiler/runtime metrics (counters, gauges, histograms) as JSON to this file")
		verbose  = flag.Bool("v", false, "info-level structured logs on stderr")
		vverbose = flag.Bool("vv", false, "debug-level structured logs on stderr")
	)
	flag.Parse()
	switch {
	case *vverbose:
		pimflow.SetVerbosity(2)
	case *verbose:
		pimflow.SetVerbosity(1)
	}
	custom := customization{ratioStep: *ratio, stages: *stages, refine: *refine, gantt: *gantt, verify: *verify}
	if *traceOut != "" {
		custom.trace = pimflow.NewTrace()
	}
	if *metrics != "" {
		custom.metrics = pimflow.NewMetrics()
	}
	if *profFile != "" {
		custom.profiles = pimflow.NewProfileStore()
		n, err := custom.profiles.Load(*profFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimflow:", err)
			os.Exit(1)
		}
		if n > 0 {
			fmt.Printf("profile cache: loaded %d entries from %s\n", n, *profFile)
		}
	}
	if err := runWith(*mode, *kind, *net, *policy, *workdir, *gpuOnly, *pimCh, *timeline, custom); err != nil {
		fmt.Fprintln(os.Stderr, "pimflow:", err)
		os.Exit(1)
	}
	if custom.profiles != nil {
		if err := custom.profiles.Save(*profFile); err != nil {
			fmt.Fprintln(os.Stderr, "pimflow:", err)
			os.Exit(1)
		}
		fmt.Printf("profile cache: %s; saved to %s\n", custom.profiles.Stats(), *profFile)
	}
	if custom.trace != nil {
		if err := writeJSONFile(*traceOut, custom.trace.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "pimflow:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%d events; open in Perfetto)\n", *traceOut, custom.trace.Len())
	}
	if custom.metrics != nil {
		if err := writeJSONFile(*metrics, custom.metrics.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "pimflow:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *metrics)
	}
}

// writeJSONFile streams an exporter into a freshly created file.
func writeJSONFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parsePolicy(s string) (pimflow.Policy, error) {
	for _, p := range pimflow.Policies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

// customization carries the §A.7 experiment-customization knobs.
type customization struct {
	ratioStep float64
	stages    int
	refine    bool
	gantt     bool
	// verify enables the static verification layer as a compile/run debug
	// gate (-verify; always on in verify mode).
	verify bool
	// profiles, when set, backs the search with a persistent profile
	// cache (-profile-cache).
	profiles *pimflow.ProfileStore
	// trace/metrics, when set, collect observability data across every
	// compile and execute of the invocation (-trace, -metrics).
	trace   *pimflow.Trace
	metrics *pimflow.Metrics
}

func defaultCustomization() customization {
	return customization{ratioStep: 0.1, stages: 2}
}

func configFor(policyName string, pimCh int, c customization) (pimflow.Config, error) {
	p, err := parsePolicy(policyName)
	if err != nil {
		return pimflow.Config{}, err
	}
	cfg := pimflow.DefaultConfig(p)
	cfg.PIMChannels = pimCh
	if c.ratioStep > 0 {
		cfg.RatioStep = c.ratioStep
	}
	if c.stages >= 2 {
		cfg.PipelineStages = c.stages
	}
	cfg.RefineRatio = c.refine
	cfg.Verify = c.verify
	cfg.Profiles = c.profiles
	cfg.Trace = c.trace
	cfg.Metrics = c.metrics
	return cfg, nil
}

func planPath(workdir, net, policyName string) string {
	return filepath.Join(workdir, fmt.Sprintf("%s.%s.plan.json", net, policyName))
}

// loadPlan reads a persisted plan if it exists and matches the requested
// configuration (policy and channel split); otherwise nil.
func loadPlan(workdir, net, policyName string, pimCh int) *pimflow.Plan {
	data, err := os.ReadFile(planPath(workdir, net, policyName))
	if err != nil {
		return nil
	}
	var plan pimflow.Plan
	if err := json.Unmarshal(data, &plan); err != nil {
		return nil
	}
	if plan.Policy.String() != policyName || plan.Options.PIMChannels != pimCh {
		return nil
	}
	return &plan
}

func run(mode, kind, net, policyName, workdir string, gpuOnly bool, pimCh int, timeline string) error {
	return runWith(mode, kind, net, policyName, workdir, gpuOnly, pimCh, timeline, defaultCustomization())
}

func runWith(mode, kind, net, policyName, workdir string, gpuOnly bool, pimCh int, timeline string, c customization) error {
	if mode == "verify" {
		return doVerify(net, policyName, pimCh, c)
	}
	model, err := pimflow.BuildModel(net, pimflow.ModelOptions{Light: true})
	if err != nil {
		return err
	}
	switch mode {
	case "profile":
		return doProfile(model, net, kind, policyName, workdir, pimCh, c)
	case "solve":
		return doSolve(model, net, policyName, workdir, pimCh, c)
	case "run":
		return doRun(model, net, policyName, workdir, gpuOnly, pimCh, timeline, c)
	case "stats":
		fmt.Print(model.Summary())
		return nil
	case "analyze":
		return doAnalyze(model)
	default:
		return fmt.Errorf("unknown mode %q (want profile, solve, run, stats, analyze, or verify)", mode)
	}
}

// doVerify statically verifies one built-in model (or all of them): the
// graph-IR invariants on the untransformed model, the same invariants
// after every transformation pass (the compile runs with the verify gate
// on), and the PIM command-stream protocol plus workload coverage on
// every offloaded layer's generated trace. No simulation output is
// produced; any diagnostic fails the invocation.
func doVerify(net, policyName string, pimCh int, c customization) error {
	names := []string{net}
	if net == "all" {
		names = pimflow.ModelNames()
	}
	c.verify = true
	failed := 0
	report := func(name string, diags []pimflow.Diagnostic) {
		failed++
		fmt.Printf("%-20s FAIL (%d violation(s))\n", name, len(diags))
		for _, d := range diags {
			fmt.Printf("  %s\n", d.String())
		}
	}
	for _, name := range names {
		model, err := pimflow.BuildModel(name, pimflow.ModelOptions{Light: true})
		if err != nil {
			return err
		}
		if diags := pimflow.VerifyGraph(model); len(diags) > 0 {
			report(name, diags)
			continue
		}
		cfg, err := configFor(policyName, pimCh, c)
		if err != nil {
			return err
		}
		compiled, err := pimflow.Compile(model, cfg)
		if err != nil {
			return fmt.Errorf("verify %s: %w", name, err)
		}
		if diags := compiled.Verify(); len(diags) > 0 {
			report(name, diags)
			continue
		}
		pimNodes := 0
		for _, d := range compiled.Plan.Decisions {
			if d.PIMCandidate && d.GPURatio < 1 {
				pimNodes++
			}
		}
		fmt.Printf("%-20s ok (%d nodes, %d offloaded layers, policy %s)\n",
			name, len(compiled.Graph.Nodes), pimNodes, policyName)
	}
	if failed > 0 {
		return fmt.Errorf("verify: %d model(s) failed", failed)
	}
	return nil
}

// doAnalyze prints per-layer lowered dimensions and arithmetic intensity
// (the paper's Fig 1 measure) — useful to see which layers are PIM
// candidates and why.
func doAnalyze(model *pimflow.Graph) error {
	layers, err := pimflow.AnalyzeLayers(model)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %-6s %8s %8s %8s %6s %12s %8s %5s\n",
		"layer", "op", "M", "K", "N", "grp", "FLOPs", "AI", "PIM")
	for _, l := range layers {
		op := string(l.Op)
		if l.Depthwise {
			op = "DWConv"
		}
		fmt.Printf("%-28s %-6s %8d %8d %8d %6d %12d %8.1f %5v\n",
			l.Name, op, l.M, l.K, l.N, l.Groups, l.FLOPs, l.ArithIntensity, l.PIMCandidate)
	}
	return nil
}

// doProfile runs the search (which profiles every candidate on the
// simulators) and reports the per-layer or per-subgraph measurements.
func doProfile(model *pimflow.Graph, net, kind, policyName, workdir string, pimCh int, c customization) error {
	cfg, err := configFor(policyName, pimCh, c)
	if err != nil {
		return err
	}
	compiled, err := pimflow.Compile(model, cfg)
	if err != nil {
		return err
	}
	plan := compiled.Plan
	switch kind {
	case "split":
		fmt.Printf("%-28s %-10s %10s %10s %10s %8s\n", "layer", "op", "gpu(cyc)", "pim(cyc)", "best(cyc)", "gpu%")
		for _, d := range plan.Decisions {
			if !d.PIMCandidate {
				continue
			}
			fmt.Printf("%-28s %-10s %10d %10d %10d %8.0f\n",
				d.Node, d.Op, d.GPUTime, d.PIMTime, d.BestTime, d.GPURatio*100)
		}
	case "pipeline":
		fmt.Printf("%-12s %6s %12s %12s %8s\n", "pattern", "nodes", "serial(cyc)", "piped(cyc)", "chosen")
		for _, pd := range plan.Pipelines {
			fmt.Printf("%-12s %6d %12d %12d %8v\n",
				pd.Candidate.Pattern, len(pd.Candidate.Nodes), pd.SerialBest, pd.Time, pd.Chosen)
		}
	default:
		return fmt.Errorf("unknown profile kind %q (want split or pipeline)", kind)
	}
	return savePlan(plan, workdir, net, policyName)
}

func savePlan(plan *pimflow.Plan, workdir, net, policyName string) error {
	if err := os.MkdirAll(workdir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(plan, "", "  ")
	if err != nil {
		return err
	}
	path := planPath(workdir, net, policyName)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("plan saved to %s\n", path)
	return nil
}

// doSolve computes (or recomputes) the optimal plan and prints the
// decision summary and the Table 2 ratio distribution.
func doSolve(model *pimflow.Graph, net, policyName, workdir string, pimCh int, c customization) error {
	cfg, err := configFor(policyName, pimCh, c)
	if err != nil {
		return err
	}
	compiled, err := pimflow.Compile(model, cfg)
	if err != nil {
		return err
	}
	plan := compiled.Plan
	full, split, gpuOnly, pipes := 0, 0, 0, 0
	for _, d := range plan.Decisions {
		if !d.PIMCandidate {
			continue
		}
		switch {
		case d.GPURatio <= 0:
			full++
		case d.GPURatio >= 1:
			gpuOnly++
		default:
			split++
		}
	}
	for _, pd := range plan.Pipelines {
		if pd.Chosen {
			pipes++
		}
	}
	fmt.Printf("model %s, policy %s: %d PIM-candidate layers\n", net, policyName, full+split+gpuOnly)
	fmt.Printf("  full offload: %d, MD-DP split: %d, full GPU: %d, pipelined subgraphs: %d\n",
		full, split, gpuOnly, pipes)
	hist := plan.RatioHistogram()
	buckets := make([]int, 0, len(hist))
	for b := range hist {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	fmt.Print("  split-ratio distribution (% on GPU -> fraction):")
	for _, b := range buckets {
		fmt.Printf(" %d:%.2f", b, hist[b])
	}
	fmt.Println()
	return savePlan(plan, workdir, net, policyName)
}

// doRun executes the transformed model (or the GPU baseline) and prints
// timing and energy. A plan persisted by an earlier profile/solve step is
// reused when present (the artifact's "jump to Step 3" path); otherwise
// the search runs first.
func doRun(model *pimflow.Graph, net, policyName, workdir string, gpuOnly bool, pimCh int, timeline string, c customization) error {
	if gpuOnly {
		policyName = pimflow.PolicyBaseline.String()
	}
	cfg, err := configFor(policyName, pimCh, c)
	if err != nil {
		return err
	}
	var compiled *pimflow.CompiledModel
	if plan := loadPlan(workdir, net, policyName, pimCh); plan != nil {
		compiled, err = pimflow.ApplyPlan(model, plan)
		if err == nil {
			fmt.Printf("reusing plan from %s\n", planPath(workdir, net, policyName))
			// Persisted plans drop the non-serializable fields; re-attach
			// this invocation's store and observability sinks for the run.
			compiled.Config.Profiles = c.profiles
			compiled.Config.Trace = c.trace
			compiled.Config.Metrics = c.metrics
		}
	}
	if compiled == nil {
		compiled, err = pimflow.Compile(model, cfg)
	}
	if err != nil {
		return err
	}
	rep, err := compiled.Run()
	if err != nil {
		return err
	}
	e, err := pimflow.Energy(rep)
	if err != nil {
		return err
	}
	fmt.Printf("model %s, policy %s\n", net, policyName)
	fmt.Printf("  inference time: %.3f ms (%d cycles)\n", rep.Seconds*1e3, rep.TotalCycles)
	fmt.Printf("  device busy: GPU %d cycles, PIM %d cycles, data movement %d cycles\n",
		rep.GPUBusy, rep.PIMBusy, rep.MoveCycles)
	fmt.Printf("  energy: %.2f mJ (GPU static %.2f, GPU dynamic %.2f, PIM %.2f)\n",
		e.Total()*1e3, e.GPUStatic*1e3, e.GPUDynamic*1e3, e.PIMDynamic*1e3)
	if c.gantt {
		fmt.Print(rep.RenderGantt(100))
	}
	if timeline != "" {
		f, err := os.Create(timeline)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteChromeTrace(f); err != nil {
			return err
		}
		fmt.Printf("  timeline written to %s (open in chrome://tracing)\n", timeline)
	}
	return nil
}
