package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunModes(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name            string
		mode, kind, net string
		policy          string
		gpuOnly         bool
	}{
		{"profile split", "profile", "split", "toy", "PIMFlow", false},
		{"profile pipeline", "profile", "pipeline", "toy", "PIMFlow", false},
		{"solve", "solve", "split", "toy", "PIMFlow", false},
		{"run baseline", "run", "split", "toy", "PIMFlow", true},
		{"run pimflow", "run", "split", "toy", "PIMFlow", false},
		{"run newton+", "run", "split", "toy", "Newton+", false},
		{"stats", "stats", "split", "toy", "PIMFlow", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := run(c.mode, c.kind, c.net, c.policy, dir, c.gpuOnly, 16, ""); err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
		})
	}
	// Plan metadata was persisted.
	if _, err := os.Stat(filepath.Join(dir, "toy.PIMFlow.plan.json")); err != nil {
		t.Fatalf("plan file missing: %v", err)
	}
}

func TestPlanReuse(t *testing.T) {
	dir := t.TempDir()
	if err := run("solve", "split", "toy", "PIMFlow", dir, false, 16, ""); err != nil {
		t.Fatal(err)
	}
	plan := loadPlan(dir, "toy", "PIMFlow", 16)
	if plan == nil {
		t.Fatal("persisted plan not loadable")
	}
	if len(plan.Decisions) == 0 {
		t.Fatal("plan lost decisions in JSON round trip")
	}
	// Mismatched channel split must not reuse.
	if loadPlan(dir, "toy", "PIMFlow", 8) != nil {
		t.Fatal("plan reused despite different channel split")
	}
	if loadPlan(dir, "toy", "Newton+", 16) != nil {
		t.Fatal("plan reused for a different policy")
	}
	// Run must succeed on the reused path.
	if err := run("run", "split", "toy", "PIMFlow", dir, false, 16, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimeline(t *testing.T) {
	dir := t.TempDir()
	tl := filepath.Join(dir, "tl.json")
	if err := run("run", "split", "toy", "PIMFlow", dir, false, 16, tl); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tl)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty timeline")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("bogus", "split", "toy", "PIMFlow", dir, false, 16, ""); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run("run", "split", "nope", "PIMFlow", dir, false, 16, ""); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run("run", "split", "toy", "FancyPolicy", dir, false, 16, ""); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run("profile", "bogus", "toy", "PIMFlow", dir, false, 16, ""); err == nil {
		t.Error("unknown profile kind accepted")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"Baseline", "Newton+", "Newton++", "PIMFlow-md", "PIMFlow-pl", "PIMFlow"} {
		if _, err := parsePolicy(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := parsePolicy("x"); err == nil {
		t.Error("unknown policy parsed")
	}
}

func TestAnalyzeMode(t *testing.T) {
	if err := run("analyze", "split", "toy", "PIMFlow", t.TempDir(), false, 16, ""); err != nil {
		t.Fatal(err)
	}
}
