// Command pimflow-fleet runs N simulated serving machines behind the
// placement and inference-graph routing tier as an HTTP JSON API:
//
//	pimflow-fleet -addr :8080 -machines 2 -load "front=mobilenet-v2;replicas=2,back=resnet-50"
//
//	GET    /healthz                     fleet liveness + per-machine drain state
//	GET    /metrics                     router-tier metrics (fleet.* keys)
//	GET    /v1/machines                 machine list with active placements
//	GET    /v1/machines/{name}/metrics  one machine's serving metrics
//	GET    /v1/models                   fleet deployments
//	POST   /v1/models/{name}            deploy (ModelSpec + replicas/lazy)
//	DELETE /v1/models/{name}            undeploy everywhere
//	POST   /v1/models/{name}/scale      set the replica count
//	POST   /v1/models/{name}/infer      route one inference (JSQ over replicas)
//	GET    /v1/graphs                   registered inference graphs
//	POST   /v1/graphs/{name}            register a graph
//	POST   /v1/graphs/{name}/infer      route one request through the graph
//
// Each -load entry extends pimflow-serve's grammar with fleet options:
// "name=model" plus semicolon-separated batch=N, window=D, cycles=N,
// slo=class, replicas=N (replicas sit on distinct machines), and lazy
// (register without placing; the first routed request triggers the
// modelmesh-style on-demand load).
//
// -graph registers inference graphs inline. Each entry is
// "name=type:steps" where type is sequence, ensemble, splitter, or
// switch; steps are comma-separated models — splitter steps carry
// weights as "model*weight", switch steps carry conditions as
// "cond=model":
//
//	-graph "chain=sequence:front,back" -graph "ab=splitter:a*3,b*1"
//
// Richer graphs (nested nodes) register over HTTP as JSON.
//
// SIGINT/SIGTERM drains every machine gracefully. With -verify each
// machine records its SR-* schedule certificate and the router records
// the FL-* fleet certificate (placements, graphs, hops); both are
// checked at drain, exiting nonzero on any violation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pimflow/internal/fleet"
	"pimflow/internal/obs"
	"pimflow/internal/serve"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var graphs multiFlag
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		machines   = flag.Int("machines", 2, "simulated machine count")
		load       = flag.String("load", "", "comma-separated models to deploy (pimflow-serve grammar plus replicas=N, lazy)")
		policy     = flag.String("policy", "PIMFlow", "offloading policy for deployed models")
		channels   = flag.Int("channels", 0, "total memory channels each deploy compiles against (0: policy default)")
		pimCh      = flag.Int("pim_channels", 0, "PIM-enabled channels of each deploy's slice (0: policy default)")
		machineGPU = flag.Int("machine_gpu", 16, "GPU channel groups of every machine")
		machinePIM = flag.Int("machine_pim", 16, "PIM channel groups of every machine")
		queueDepth = flag.Int("queue", 64, "admission queue depth per machine")
		admission  = flag.String("admission", "reject", "backpressure policy when a machine's queue is full: reject | block | shed-oldest")
		workers    = flag.Int("workers", 4, "request-processing goroutines per machine")
		maxBatch   = flag.Int("max_batch", 1, "largest same-model coalesced batch (1: no batching)")
		batchWin   = flag.Duration("batch_window", 0, "extra wall-clock wait for same-model requests to coalesce")
		batchCyc   = flag.Int64("batch_cycles", 0, "virtual-time batching window for pinned-arrival requests (cycles)")
		sloClass   = flag.String("slo", "", "default latency class for deploys (gold, silver, bronze; empty: best-effort)")
		seed       = flag.Int64("seed", 1, "Splitter weighted-hash seed")
		timeShare  = flag.Bool("time_share", false, "let placement overcommit channel groups (safety proven by SR-OVERLAP)")
		verifyFl   = flag.Bool("verify", false, "record the fleet (FL-*) and per-machine schedule (SR-*) certificates, check at drain (nonzero exit on violations)")
		traceFile  = flag.String("trace", "", "Chrome trace file written at shutdown (router lanes + per-machine timelines)")
		drainWait  = flag.Duration("drain", 30*time.Second, "graceful-drain budget at shutdown")
		verbose    = flag.Bool("v", false, "info-level structured logs on stderr")
		vverbose   = flag.Bool("vv", false, "debug-level structured logs on stderr")
	)
	flag.Var(&graphs, "graph", "inference graph to register: name=type:steps (repeatable)")
	flag.Parse()
	switch {
	case *vverbose:
		obs.SetVerbosity(2)
	case *verbose:
		obs.SetVerbosity(1)
	}
	if err := run(*addr, *machines, *load, *policy, *channels, *pimCh, *machineGPU, *machinePIM,
		*queueDepth, *admission, *workers, *maxBatch, *batchWin, *batchCyc, *sloClass,
		*seed, *timeShare, graphs, *traceFile, *drainWait, *verifyFl); err != nil {
		fmt.Fprintln(os.Stderr, "pimflow-fleet:", err)
		os.Exit(1)
	}
}

func run(addr string, machines int, load, policy string, channels, pimCh, machineGPU, machinePIM,
	queueDepth int, admission string, workers, maxBatch int,
	batchWin time.Duration, batchCyc int64, sloClass string, seed int64, timeShare bool,
	graphs []string, traceFile string, drainWait time.Duration, verifyFl bool) error {
	adm, err := serve.ParseAdmissionPolicy(admission)
	if err != nil {
		return err
	}
	var trace *obs.Trace
	if traceFile != "" {
		trace = obs.NewTrace()
	}
	f, err := fleet.New(fleet.Config{
		Machines:          machines,
		Machine:           serve.Machine{GPUChannels: machineGPU, PIMChannels: machinePIM},
		QueueDepth:        queueDepth,
		Admission:         adm,
		Workers:           workers,
		MaxBatch:          maxBatch,
		BatchWindow:       batchWin,
		BatchWindowCycles: batchCyc,
		Trace:             trace,
		Certify:           verifyFl,
		Seed:              seed,
		TimeShare:         timeShare,
	})
	if err != nil {
		return err
	}

	loads, err := parseLoads(load, policy, channels, pimCh, sloClass)
	if err != nil {
		return err
	}
	for _, l := range loads {
		if l.lazy {
			if err := f.Register(l.spec, l.replicas); err != nil {
				return fmt.Errorf("register %q: %w", l.spec.Name, err)
			}
			fmt.Printf("registered %s (model %s, %d replica(s), lazy: placed on first request)\n",
				l.spec.Name, l.spec.Model, l.replicas)
			continue
		}
		if err := f.Deploy(l.spec, l.replicas); err != nil {
			return fmt.Errorf("deploy %q: %w", l.spec.Name, err)
		}
	}
	for _, d := range f.Deployments() {
		if !d.Loaded {
			continue
		}
		fmt.Printf("deployed %s (model %s): %d GPU + %d PIM channels on %s\n",
			d.Name, d.Model, d.Demand.GPU, d.Demand.PIM, strings.Join(d.Replicas, ","))
	}
	for _, entry := range graphs {
		g, err := parseGraph(entry)
		if err != nil {
			return err
		}
		if err := f.RegisterGraph(g); err != nil {
			return fmt.Errorf("graph %q: %w", g.Name, err)
		}
		fmt.Printf("registered graph %s (root %s)\n", g.Name, g.Root)
	}

	httpSrv := &http.Server{Addr: addr, Handler: f.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("fleet of %d machines serving on %s (each: %d GPU + %d PIM channel groups, queue %d/%s, %d workers)\n",
			f.Size(), addr, machineGPU, machinePIM, queueDepth, adm, workers)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("received %s, draining %d machines (budget %s)\n", s, f.Size(), drainWait)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := f.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if verifyFl {
		cert := f.Certificate()
		if diags := f.Verify(); len(diags) > 0 {
			for _, d := range diags {
				fmt.Fprintln(os.Stderr, d)
			}
			return fmt.Errorf("fleet certificate: %d violation(s) (FL-* and per-machine SR-*)", len(diags))
		}
		leases := 0
		for _, sc := range cert.Schedules {
			leases += len(sc.Leases)
		}
		fmt.Printf("fleet certificate: %d machines, %d placements, %d hops, %d leases verified clean (FL-* + SR-*)\n",
			len(cert.Machines), len(cert.Placements), len(cert.Hops), leases)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if traceFile != "" {
		out, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := trace.WriteJSON(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events written to %s\n", trace.Len(), traceFile)
	}
	fmt.Println("drained cleanly")
	return nil
}

// fleetLoad is one -load entry: the model spec plus fleet placement
// options.
type fleetLoad struct {
	spec     serve.ModelSpec
	replicas int
	lazy     bool
}

// parseLoads expands the -load list. The grammar is pimflow-serve's
// ("name=model" plus batch=N, window=D, cycles=N, slo=class) extended
// with replicas=N and the bare "lazy" option.
func parseLoads(load, policy string, channels, pimCh int, sloClass string) ([]fleetLoad, error) {
	var loads []fleetLoad
	for _, entry := range strings.Split(load, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ";")
		name, model := parts[0], parts[0]
		if eq := strings.IndexByte(parts[0], '='); eq >= 0 {
			name, model = parts[0][:eq], parts[0][eq+1:]
		}
		l := fleetLoad{
			spec: serve.ModelSpec{
				Name: name, Model: model, Policy: policy,
				TotalChannels: channels, PIMChannels: pimCh,
				SLO: sloClass,
			},
			replicas: 1,
		}
		for _, opt := range parts[1:] {
			opt = strings.TrimSpace(opt)
			if opt == "" {
				continue
			}
			if opt == "lazy" {
				l.lazy = true
				continue
			}
			key, val, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("load entry %q: option %q is not key=value", entry, opt)
			}
			switch key {
			case "replicas":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("load entry %q: replicas: %v", entry, err)
				}
				l.replicas = n
			case "batch":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("load entry %q: batch: %v", entry, err)
				}
				l.spec.MaxBatch = n
			case "window":
				d, err := time.ParseDuration(val)
				if err != nil {
					return nil, fmt.Errorf("load entry %q: window: %v", entry, err)
				}
				l.spec.BatchWindowMillis = d.Milliseconds()
			case "cycles":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("load entry %q: cycles: %v", entry, err)
				}
				l.spec.BatchWindowCycles = n
			case "slo":
				l.spec.SLO = val
			default:
				return nil, fmt.Errorf("load entry %q: unknown option %q (replicas, lazy, batch, window, cycles, slo)", entry, key)
			}
		}
		loads = append(loads, l)
	}
	return loads, nil
}

// parseGraph parses one -graph entry, "name=type:steps". Steps are
// comma-separated models; splitter steps carry "model*weight" weights,
// switch steps carry "cond=model" conditions.
func parseGraph(entry string) (fleet.Graph, error) {
	name, rest, ok := strings.Cut(strings.TrimSpace(entry), "=")
	if !ok {
		return fleet.Graph{}, fmt.Errorf("graph entry %q is not name=type:steps", entry)
	}
	typ, stepList, ok := strings.Cut(rest, ":")
	if !ok {
		return fleet.Graph{}, fmt.Errorf("graph entry %q is not name=type:steps", entry)
	}
	node := fleet.GraphNode{Name: "root", Type: typ}
	for _, s := range strings.Split(stepList, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		step := fleet.GraphStep{Model: s}
		switch typ {
		case "splitter":
			if model, w, ok := strings.Cut(s, "*"); ok {
				n, err := strconv.Atoi(w)
				if err != nil {
					return fleet.Graph{}, fmt.Errorf("graph entry %q: weight in %q: %v", entry, s, err)
				}
				step.Model, step.Weight = model, n
			} else {
				step.Weight = 1
			}
		case "switch":
			cond, model, ok := strings.Cut(s, "=")
			if !ok {
				return fleet.Graph{}, fmt.Errorf("graph entry %q: switch step %q is not cond=model", entry, s)
			}
			step.Condition, step.Model = cond, model
		}
		node.Steps = append(node.Steps, step)
	}
	return fleet.Graph{Name: name, Root: "root", Nodes: []fleet.GraphNode{node}}, nil
}
