package main

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"pimflow/internal/obs"
)

// traceDoc is the subset of the Chrome trace-event document the summary
// reads back; obs.Event's JSON tags make the round trip exact.
type traceDoc struct {
	TraceEvents []obs.Event    `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData"`
}

// cyclesOf converts an event duration (microseconds in the export, one
// GPU cycle per nanosecond) back to cycles.
func cyclesOf(durUS float64) int64 {
	return int64(durUS*1e3 + 0.5)
}

// summarize reads a Chrome trace produced by this repo's tooling and
// prints per-stage/per-model cycle totals from the request lanes plus
// device busy totals from the simulated timeline, so attributed traces
// are inspectable without a browser.
func summarize(r io.Reader, w io.Writer) error {
	var doc traceDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("parse trace: %w", err)
	}

	type stageAgg struct {
		count  int64
		cycles int64
	}
	var (
		timeline  = map[string]*stageAgg{} // device/track name -> busy total
		requests  = map[string]*stageAgg{} // model -> lane totals
		stages    = map[string]map[string]*stageAgg{}
		stageSeen = map[string]bool{}
		threads   = map[[2]int]string{}
		events    int
	)
	for _, e := range doc.TraceEvents {
		if e.Phase == "M" && e.Name == "thread_name" {
			if name, ok := e.Args["name"].(string); ok {
				threads[[2]int{e.PID, e.TID}] = name
			}
		}
	}
	add := func(m map[string]*stageAgg, key string, cycles int64) {
		a := m[key]
		if a == nil {
			a = &stageAgg{}
			m[key] = a
		}
		a.count++
		a.cycles += cycles
	}
	modelOf := func(e obs.Event) string {
		if m, ok := e.Args["model"].(string); ok && m != "" {
			return m
		}
		// The lane span name is "<id> <model>" when args are absent.
		if i := strings.LastIndexByte(e.Name, ' '); i >= 0 {
			return e.Name[i+1:]
		}
		return e.Name
	}
	for _, e := range doc.TraceEvents {
		if e.Phase != "X" {
			continue
		}
		events++
		switch e.PID {
		case obs.PIDTimeline:
			track := threads[[2]int{e.PID, e.TID}]
			if track == "" {
				track = fmt.Sprintf("tid-%d", e.TID)
			}
			add(timeline, track, cyclesOf(e.Dur))
		case obs.PIDRequests:
			model := modelOf(e)
			if strings.HasSuffix(e.Cat, ".stage") {
				if stages[model] == nil {
					stages[model] = map[string]*stageAgg{}
				}
				add(stages[model], e.Name, cyclesOf(e.Dur))
				stageSeen[e.Name] = true
			} else {
				add(requests, model, cyclesOf(e.Dur))
			}
		}
	}
	if events == 0 {
		return fmt.Errorf("trace holds no complete events")
	}

	sortedKeys := func(n int, iter func(yield func(string))) []string {
		keys := make([]string, 0, n)
		iter(func(k string) { keys = append(keys, k) })
		sort.Strings(keys)
		return keys
	}

	if len(requests) > 0 {
		fmt.Fprintln(w, "request lanes (simulated cycles):")
		stageCols := sortedKeys(len(stageSeen), func(y func(string)) {
			for s := range stageSeen {
				y(s)
			}
		})
		for _, model := range sortedKeys(len(requests), func(y func(string)) {
			for m := range requests {
				y(m)
			}
		}) {
			a := requests[model]
			fmt.Fprintf(w, "  %-20s %6d requests  %12d total cycles  %10.0f mean\n",
				model, a.count, a.cycles, float64(a.cycles)/float64(a.count))
			for _, st := range stageCols {
				sa := stages[model][st]
				if sa == nil {
					continue
				}
				fmt.Fprintf(w, "    %-18s %6d spans     %12d total cycles  %10.0f mean\n",
					st, sa.count, sa.cycles, float64(sa.cycles)/float64(sa.count))
			}
		}
	}
	if len(timeline) > 0 {
		fmt.Fprintln(w, "simulated timeline (busy cycles per track):")
		for _, track := range sortedKeys(len(timeline), func(y func(string)) {
			for tr := range timeline {
				y(tr)
			}
		}) {
			a := timeline[track]
			fmt.Fprintf(w, "  %-20s %6d events    %12d busy cycles\n", track, a.count, a.cycles)
		}
	}
	if len(requests) == 0 && len(timeline) == 0 {
		fmt.Fprintln(w, "no request-lane or timeline events (wall-clock-only trace)")
	}
	return nil
}
