// Command pimflow-trace generates and inspects the DRAM-PIM command trace
// of one PIM-offloadable layer, the equivalent of the artifact's trace
// files fed to the Ramulator-based simulator.
//
//	pimflow-trace -m 196 -k 576 -n 160            a lowered conv GEMM
//	pimflow-trace -m 1 -k 4096 -n 4096 -dump      batch-1 FC, full listing
//	pimflow-trace -m 196 -k 576 -n 160 -newton    Newton+ feature set
//
// With -summary it instead reads back a Chrome trace file written by
// this repo's tooling (pimflow-bench -trace, pimflow-serve -trace) and
// prints per-stage/per-model cycle totals from the request lanes plus
// device busy totals, so attributed traces are inspectable without a
// browser:
//
//	pimflow-trace -summary poisson.trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"pimflow/internal/codegen"
	"pimflow/internal/pim"
)

func main() {
	var (
		m        = flag.Int("m", 196, "input vectors (output spatial positions)")
		k        = flag.Int("k", 576, "vector length (lowered patch size)")
		n        = flag.Int("n", 160, "outputs (filter count)")
		segments = flag.Int("segments", 1, "contiguous input segments per vector (KH for kxk convs)")
		channels = flag.Int("channels", 16, "PIM-enabled channels")
		newton   = flag.Bool("newton", false, "use the baseline Newton feature set (1 buffer, no hiding, no strided GWRITE)")
		dump     = flag.Bool("dump", false, "print the full per-channel command listing")
		summary  = flag.String("summary", "", "summarize a Chrome trace file (per-stage/per-model cycle totals) instead of generating a command trace")
	)
	flag.Parse()
	if *summary != "" {
		f, err := os.Open(*summary)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimflow-trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := summarize(f, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "pimflow-trace:", err)
			os.Exit(1)
		}
		return
	}
	cfg := pim.DefaultConfig()
	opts := codegen.DefaultOpts()
	if *newton {
		cfg = pim.NewtonConfig()
		opts = codegen.Opts{Granularity: codegen.GranComp, StridedGWrite: false}
	}
	cfg.Channels = *channels
	w := codegen.Workload{M: *m, K: *k, N: *n, Segments: *segments}
	tr, err := codegen.Generate(w, cfg, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimflow-trace:", err)
		os.Exit(1)
	}
	if err := tr.Validate(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "pimflow-trace: invalid trace:", err)
		os.Exit(1)
	}
	st, err := pim.Simulate(cfg, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimflow-trace:", err)
		os.Exit(1)
	}
	fmt.Printf("workload: [%d x %d] x [%d x %d] GEMM (%d segments/vector)\n", *m, *k, *k, *n, *segments)
	fmt.Printf("trace: %s\n", tr.Summary())
	fmt.Printf("timing: %d cycles (%.3f us at %.1f GHz), MAC pipeline busy %.0f%%\n",
		st.Cycles, st.Seconds*1e6, cfg.ClockGHz, st.BusyFraction*100)
	if *dump {
		if err := tr.Dump(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "pimflow-trace:", err)
			os.Exit(1)
		}
	}
}
