package main

import (
	"bytes"
	"strings"
	"testing"

	"pimflow/internal/obs"
)

// A synthetic trace built with the obs collector round-trips through the
// summary: per-model request totals, per-stage totals, device busy
// totals, and the µs→cycles conversion.
func TestSummarize(t *testing.T) {
	tr := obs.NewTrace()
	tr.SetProcessName(obs.PIDTimeline, "simulated timeline")
	tr.SetThreadName(obs.PIDTimeline, obs.TIDGPU, "GPU")
	tr.SetThreadName(obs.PIDTimeline, obs.TIDPIM, "PIM")
	tr.CompleteCycles(obs.TIDGPU, "conv1", "Conv", 0, 4000, nil)
	tr.CompleteCycles(obs.TIDPIM, "conv1_pim", "Conv", 0, 3000, nil)
	tr.RequestLaneCycles("r000001 toy-gold", "serve.request", 1000, 5000, []obs.LaneStage{
		{Name: "batch_window", Start: 1000, End: 2000},
		{Name: "execute", Start: 2000, End: 5000},
	}, map[string]any{"model": "toy-gold", "id": "r000001"})
	tr.RequestLaneCycles("r000002 toy-gold", "serve.request", 6000, 8000, nil, nil)

	var enc bytes.Buffer
	if err := tr.WriteJSON(&enc); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := summarize(&enc, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"request lanes", "toy-gold", "2 requests", "6000 total cycles",
		"batch_window", "1000 total cycles",
		"execute", "3000 total cycles",
		"simulated timeline", "GPU", "4000 busy cycles", "PIM",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("summary missing %q:\n%s", want, text)
		}
	}

	// Not-a-trace input errors.
	if err := summarize(strings.NewReader("not json"), &out); err == nil {
		t.Fatal("garbage input accepted")
	}
	if err := summarize(strings.NewReader(`{"traceEvents":[]}`), &out); err == nil {
		t.Fatal("empty trace accepted")
	}
}
