// Package pimflow is an end-to-end compiler and runtime for CNN inference
// on processing-in-memory (PIM) DRAM, reproducing "PIMFlow: Compiler and
// Runtime Support for CNN Models on Processing-in-Memory DRAM" (CGO 2023).
//
// The library takes an ONNX-like model graph, searches per-layer execution
// modes (full GPU, full PIM offload, multi-device data-parallel split, or
// pipelined subgraphs), transforms the graph accordingly, generates
// Newton/AiM-style PIM command traces for offloaded layers, and schedules
// the result on a simulated GPU with PIM-enabled GDDR6 memory channels.
//
// Quickstart:
//
//	model, _ := pimflow.BuildModel("mobilenet-v2", pimflow.ModelOptions{Light: true})
//	compiled, _ := pimflow.Compile(model, pimflow.DefaultConfig(pimflow.PolicyPIMFlow))
//	report, _ := compiled.Run()
//	fmt.Printf("inference: %.3f ms\n", report.Seconds*1e3)
//
// Hardware configuration, offloading policies (Baseline, Newton+,
// Newton++, PIMFlow-md, PIMFlow-pl, PIMFlow), and the paper's experiment
// harnesses (Experiments) are all exposed; see the examples directory.
package pimflow

import (
	"fmt"
	"log/slog"

	"pimflow/internal/codegen"
	"pimflow/internal/energy"
	"pimflow/internal/experiments"
	"pimflow/internal/graph"
	"pimflow/internal/interp"
	"pimflow/internal/models"
	"pimflow/internal/obs"
	"pimflow/internal/profcache"
	"pimflow/internal/runtime"
	"pimflow/internal/search"
	"pimflow/internal/tensor"
	"pimflow/internal/transform"
	"pimflow/internal/verify"
)

// Graph is a model computation graph (ONNX-like IR).
type Graph = graph.Graph

// GraphBuilder constructs custom model graphs layer by layer.
type GraphBuilder = graph.Builder

// Tensor is a dense float32 tensor.
type Tensor = tensor.Tensor

// Policy selects the offloading mechanism.
type Policy = search.Policy

// Offloading mechanisms, in increasing capability (paper §5).
const (
	PolicyBaseline       = search.PolicyBaseline
	PolicyNewtonPlus     = search.PolicyNewtonPlus
	PolicyNewtonPlusPlus = search.PolicyNewtonPlusPlus
	PolicyMDDP           = search.PolicyMDDP
	PolicyPipeline       = search.PolicyPipeline
	PolicyPIMFlow        = search.PolicyPIMFlow
)

// Policies returns all offloading mechanisms in evaluation order.
func Policies() []Policy { return search.Policies() }

// Config is the compilation configuration: policy, hardware description,
// and search parameters.
type Config = search.Options

// DefaultConfig returns the paper's configuration for a policy: a
// 32-channel GDDR6 memory with 16 PIM-enabled channels, 10% split-ratio
// search steps, and two pipeline stages.
func DefaultConfig(p Policy) Config { return search.DefaultOptions(p) }

// ModelOptions configures model-zoo construction.
type ModelOptions = models.Options

// ModelNames lists the built-in models (the artifact's -n values):
// efficientnet-v1-b0, mnasnet-1.0, mobilenet-v2, resnet-50, vgg-16,
// bert-base, toy.
func ModelNames() []string { return models.Names() }

// EvaluatedCNNs returns the five CNNs of the paper's main evaluation.
func EvaluatedCNNs() []string { return models.EvaluatedCNNs() }

// BuildModel constructs a built-in model by name.
func BuildModel(name string, opts ModelOptions) (*Graph, error) {
	return models.Build(name, opts)
}

// NewGraphBuilder starts a custom model with one NHWC input tensor.
func NewGraphBuilder(name string, inputShape ...int) *GraphBuilder {
	return graph.NewBuilder(name, inputShape...)
}

// Plan is the execution-mode search result (Algorithm 1).
type Plan = search.Plan

// ProfileStore is a content-keyed, concurrency-safe cache of hardware
// profiles (the paper's metadata log, §4.2.2). Assign one to
// Config.Profiles to reuse PIM trace simulations and GPU roofline timings
// across compilations; Save/Load persist it as JSON between runs.
type ProfileStore = profcache.Store

// ProfileStats is a snapshot of a ProfileStore's hit/miss/shared counters.
type ProfileStats = profcache.Stats

// NewProfileStore returns an empty profile store.
func NewProfileStore() *ProfileStore { return profcache.New() }

// ExperimentProfileCache returns the shared store used by every
// experiment harness, for persistence and reporting in drivers.
func ExperimentProfileCache() *ProfileStore { return experiments.ProfileCache() }

// SetExperimentMetrics attaches a metrics registry to every experiment
// harness compilation and execution (nil detaches). The harness results
// and report text are unaffected.
func SetExperimentMetrics(m *Metrics) { experiments.SetMetrics(m) }

// Report is a simulated execution schedule with timing.
type Report = runtime.Report

// Trace collects observability spans across the pipeline: wall-clock
// search phases and profiling probes, the final schedule's simulated
// GPU/PIM timeline, and per-channel PIM command activity. Assign one to
// Config.Trace before Compile/Run and export it with WriteJSON as Chrome
// trace-event JSON (chrome://tracing, Perfetto). A nil Trace disables
// collection at near-zero cost.
type Trace = obs.Trace

// NewTrace returns an enabled trace collector.
func NewTrace() *Trace { return obs.NewTrace() }

// Metrics is a registry of counters, gauges, and histograms the compiler
// and runtime populate when assigned to Config.Metrics: simulations run,
// profile-cache hit rate, probes per layer, device busy cycles,
// per-channel utilization, and PIM command mix. Export with WriteJSON. A
// nil Metrics disables collection at near-zero cost.
type Metrics = obs.Metrics

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// SetVerbosity configures the package's structured logging to stderr:
// 0 disables (the default), 1 enables info-level, 2 and above debug-level
// messages. Logging is process-global and safe to toggle concurrently.
func SetVerbosity(v int) { obs.SetVerbosity(v) }

// SetLogger installs a custom slog logger for the package's structured
// logs; nil restores the disabled default.
func SetLogger(l *slog.Logger) { obs.SetLogger(l) }

// EnergyBreakdown reports inference energy by component.
type EnergyBreakdown = energy.Breakdown

// CompiledModel is a searched, transformed, and ready-to-execute model.
type CompiledModel struct {
	// Graph is the transformed graph with execution annotations.
	Graph *Graph
	// Plan records the per-layer decisions and pipeline choices.
	Plan *Plan
	// Config is the configuration the model was compiled under.
	Config Config
}

// Compile runs the execution-mode and task-size search on the model and
// applies the chosen transformations.
func Compile(model *Graph, cfg Config) (*CompiledModel, error) {
	g, plan, err := search.Compile(model, cfg)
	if err != nil {
		return nil, err
	}
	return &CompiledModel{Graph: g, Plan: plan, Config: cfg}, nil
}

// Run schedules the compiled model on the simulated GPU-PIM system and
// returns the timing report.
func (c *CompiledModel) Run() (*Report, error) {
	return runtime.Execute(c.Graph, c.Config.RuntimeConfig())
}

// ApplyPlan transforms the model according to a previously computed plan
// (e.g. one persisted as JSON by the CLI), skipping the search phase —
// the artifact's "jump to Step 3" path.
func ApplyPlan(model *Graph, plan *Plan) (*CompiledModel, error) {
	g, err := search.Apply(model, plan)
	if err != nil {
		return nil, err
	}
	return &CompiledModel{Graph: g, Plan: plan, Config: plan.Options}, nil
}

// Energy computes the energy of a report under the default energy model.
func Energy(rep *Report) (EnergyBreakdown, error) {
	return energy.OfReport(rep, energy.DefaultParams())
}

// Diagnostic is one structured finding from the static verification
// layer: the violated rule ID plus the node, tensor, channel, or command
// it anchors to.
type Diagnostic = verify.Diagnostic

// VerifyRule documents one rule of the static verification layer.
type VerifyRule = verify.Rule

// VerifyRules returns the verification rule catalogue — every graph-IR
// invariant and PIM command-stream protocol rule, with its rule ID — in
// stable documentation order.
func VerifyRules() []VerifyRule { return verify.Rules() }

// VerifyGraph checks a model graph against the IR invariants (structural
// well-formedness, shape consistency, MD-DP and pipeline soundness) and
// returns the violations, empty when the graph is clean. Setting
// Config.Verify runs the same checker automatically after every
// transformation pass during compilation.
func VerifyGraph(g *Graph) []Diagnostic { return verify.Graph(g) }

// Verify statically checks the compiled model end to end: the
// transformed graph against the IR invariants, every offloaded layer's
// generated PIM command trace against the §4.1 protocol state machine
// and the workload-coverage oracle, and the plan's execution-mode
// assignment against an exact branch-and-bound solver (the OP-* rules —
// the search's dynamic program must have found the true optimum of the
// profiled times). It returns all violations, empty when the model is
// clean; nothing is simulated.
func (c *CompiledModel) Verify() []Diagnostic {
	rc := c.Config.RuntimeConfig()
	diags := verify.Compiled(c.Graph, rc.PIM, rc.Codegen)
	return append(diags, verify.PlanSearch(c.Plan.Certificate())...)
}

// Execute is a convenience wrapper: compile under the policy's default
// configuration and run, returning the report.
func Execute(model *Graph, p Policy) (*Report, error) {
	c, err := Compile(model, DefaultConfig(p))
	if err != nil {
		return nil, err
	}
	return c.Run()
}

// Infer functionally executes a graph on an input tensor with the
// reference interpreter (requires a model built with full weights, i.e.
// ModelOptions.Light == false). Transformed graphs produce the same
// outputs as their originals; the test suite relies on this.
func Infer(g *Graph, input *Tensor) (*Tensor, error) {
	return interp.RunSingle(g, input)
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// FoldBatchNorm folds inference-mode BatchNorm nodes into their preceding
// convolutions — the standard ONNX preprocessing applied before PIM-aware
// transformation. Returns the number of folded nodes.
func FoldBatchNorm(g *Graph) (int, error) { return transform.FoldBatchNorm(g) }

// LayerInfo summarizes one Conv/Gemm layer: lowered GEMM dimensions,
// arithmetic work, and arithmetic intensity (the Fig 1 measure).
type LayerInfo = codegen.LayerInfo

// AnalyzeLayers returns a LayerInfo for every Conv and Gemm layer of the
// model in topological order.
func AnalyzeLayers(g *Graph) ([]LayerInfo, error) { return codegen.AnalyzeLayers(g) }

// Experiment is a registered paper-figure harness.
type Experiment = experiments.Runner

// ExperimentResult is a regenerated table or figure.
type ExperimentResult = experiments.Result

// Experiments returns the harnesses that regenerate every table and
// figure in the paper's evaluation.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID returns one experiment harness ("fig9", "table2", ...).
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }

// Summary formats a one-line comparison of a policy run against the GPU
// baseline for the same model.
func Summary(model *Graph, p Policy) (string, error) {
	base, err := Execute(model, PolicyBaseline)
	if err != nil {
		return "", err
	}
	rep, err := Execute(model, p)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s: %s %.3f ms vs baseline %.3f ms (%.2fx)",
		model.Name, p, rep.Seconds*1e3, base.Seconds*1e3,
		float64(base.TotalCycles)/float64(rep.TotalCycles)), nil
}
