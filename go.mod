module pimflow

go 1.22
