// BERT sweep: the paper's model-type sensitivity study (Fig 16) — how
// PIM offloading of a transformer's FC layers behaves across sequence
// lengths. Short sequences are pure batch-1 GEMV territory where PIM wins
// by an order of magnitude; as the sequence grows, the GPU's GEMM
// machinery catches up.
package main

import (
	"fmt"
	"log"

	"pimflow"
)

func main() {
	fmt.Printf("%-8s %14s %14s %10s %10s\n", "seqlen", "baseline (ms)", "PIMFlow (ms)", "speedup", "offloaded")
	for _, seq := range []int{3, 8, 16, 32, 64, 128} {
		model, err := pimflow.BuildModel("bert-base", pimflow.ModelOptions{Light: true, SeqLen: seq})
		if err != nil {
			log.Fatal(err)
		}
		base, err := pimflow.Execute(model, pimflow.PolicyBaseline)
		if err != nil {
			log.Fatal(err)
		}
		compiled, err := pimflow.Compile(model, pimflow.DefaultConfig(pimflow.PolicyPIMFlow))
		if err != nil {
			log.Fatal(err)
		}
		rep, err := compiled.Run()
		if err != nil {
			log.Fatal(err)
		}
		offloaded := 0
		for _, d := range compiled.Plan.Decisions {
			if d.PIMCandidate && d.GPURatio < 1 {
				offloaded++
			}
		}
		fmt.Printf("%-8d %14.3f %14.3f %9.2fx %10d\n",
			seq, base.Seconds*1e3, rep.Seconds*1e3,
			float64(base.TotalCycles)/float64(rep.TotalCycles), offloaded)
	}
}
