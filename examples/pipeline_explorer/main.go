// Pipeline explorer: enumerate the pipelining candidate subgraphs of
// MnasNet-1.0 (the paper's 1x1-DW / DW-1x1 / 1x1-DW-1x1 patterns),
// show their profiled times, and report which ones the dynamic program
// selected over MD-DP execution.
package main

import (
	"fmt"
	"log"

	"pimflow"
)

func main() {
	model, err := pimflow.BuildModel("mnasnet-1.0", pimflow.ModelOptions{Light: true})
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := pimflow.Compile(model, pimflow.DefaultConfig(pimflow.PolicyPIMFlow))
	if err != nil {
		log.Fatal(err)
	}
	plan := compiled.Plan

	fmt.Printf("%d pipelining candidates found\n\n", len(plan.Pipelines))
	fmt.Printf("%-12s %-28s %12s %12s %8s %8s\n",
		"pattern", "anchor layer", "serial(cyc)", "piped(cyc)", "gain", "chosen")
	for _, pd := range plan.Pipelines {
		gain := float64(pd.SerialBest)/float64(pd.Time) - 1
		fmt.Printf("%-12s %-28s %12d %12d %7.1f%% %8v\n",
			pd.Candidate.Pattern, pd.Candidate.Nodes[0],
			pd.SerialBest, pd.Time, gain*100, pd.Chosen)
	}

	chosen := 0
	for _, pd := range plan.Pipelines {
		if pd.Chosen {
			chosen++
		}
	}
	rep, err := compiled.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d subgraphs pipelined; end-to-end inference %.3f ms\n", chosen, rep.Seconds*1e3)
}
