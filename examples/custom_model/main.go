// Custom model: build a small CNN with the graph builder, optimize it
// with PIMFlow, and verify the transformed graph is numerically identical
// to the original with the reference interpreter.
package main

import (
	"fmt"
	"log"

	"pimflow"
)

func main() {
	// A stack of inverted-bottleneck blocks with deep channels at 14x14 —
	// the moderate-arithmetic-intensity regime where GPU-PIM mixed
	// execution shines. Full weights so the model can be executed
	// functionally, not just timed.
	b := pimflow.NewGraphBuilder("custom-cnn", 1, 14, 14, 96)
	for i := 0; i < 4; i++ {
		b.PointwiseConv(576).Relu6()
		b.DepthwiseConv(3, 3, 1, 1, [4]int{1, 1, 1, 1}).Relu6()
		b.PointwiseConv(96)
	}
	b.PointwiseConv(1280).Relu6()
	b.GlobalAvgPool().Flatten().Gemm(10).Softmax()
	model, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}

	compiled, err := pimflow.Compile(model, pimflow.DefaultConfig(pimflow.PolicyPIMFlow))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := compiled.Run()
	if err != nil {
		log.Fatal(err)
	}
	baseRep, err := pimflow.Execute(model, pimflow.PolicyBaseline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom model: baseline %.3f ms -> PIMFlow %.3f ms (%.2fx)\n",
		baseRep.Seconds*1e3, rep.Seconds*1e3,
		float64(baseRep.TotalCycles)/float64(rep.TotalCycles))

	// The transformations must preserve semantics: run both graphs on the
	// same input and compare.
	in := pimflow.NewTensor(1, 14, 14, 96)
	in.FillRandom(42)
	want, err := pimflow.Infer(model, in)
	if err != nil {
		log.Fatal(err)
	}
	got, err := pimflow.Infer(compiled.Graph, in.Clone())
	if err != nil {
		log.Fatal(err)
	}
	maxDiff := 0.0
	for i := range want.Data {
		d := float64(want.Data[i] - got.Data[i])
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("semantics check: max |orig - transformed| = %.2g (outputs %v)\n", maxDiff, want.Shape)
	if maxDiff > 1e-3 {
		log.Fatal("transformed graph diverged from the original")
	}
	fmt.Println("OK: transformed graph is numerically equivalent")
}
