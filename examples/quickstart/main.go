// Quickstart: compile MobileNetV2 with the full PIMFlow pipeline and
// compare it against the GPU-only baseline and the intermediate
// offloading mechanisms.
package main

import (
	"fmt"
	"log"

	"pimflow"
)

func main() {
	model, err := pimflow.BuildModel("mobilenet-v2", pimflow.ModelOptions{Light: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s: %d nodes\n\n", model.Name, len(model.Nodes))

	var baseline int64
	fmt.Printf("%-12s %12s %10s %12s\n", "policy", "time (ms)", "speedup", "energy (mJ)")
	for _, policy := range pimflow.Policies() {
		compiled, err := pimflow.Compile(model, pimflow.DefaultConfig(policy))
		if err != nil {
			log.Fatal(err)
		}
		report, err := compiled.Run()
		if err != nil {
			log.Fatal(err)
		}
		e, err := pimflow.Energy(report)
		if err != nil {
			log.Fatal(err)
		}
		if policy == pimflow.PolicyBaseline {
			baseline = report.TotalCycles
		}
		fmt.Printf("%-12s %12.3f %9.2fx %12.2f\n",
			policy, report.Seconds*1e3,
			float64(baseline)/float64(report.TotalCycles), e.Total()*1e3)
	}

	// Inspect the PIMFlow plan: how were layers placed?
	compiled, err := pimflow.Compile(model, pimflow.DefaultConfig(pimflow.PolicyPIMFlow))
	if err != nil {
		log.Fatal(err)
	}
	full, split, gpu := 0, 0, 0
	for _, d := range compiled.Plan.Decisions {
		if !d.PIMCandidate {
			continue
		}
		switch {
		case d.GPURatio <= 0:
			full++
		case d.GPURatio >= 1:
			gpu++
		default:
			split++
		}
	}
	fmt.Printf("\nPIMFlow plan: %d layers fully offloaded to PIM, %d split across GPU+PIM, %d on GPU\n",
		full, split, gpu)
}
