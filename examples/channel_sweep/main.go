// Channel sweep: explore the GPU/PIM memory channel division of the
// 32-channel GDDR6 memory (the paper's Fig 13 design-space study). The
// sweet spot balances PIM acceleration against GPU bandwidth loss.
package main

import (
	"fmt"
	"log"

	"pimflow"
)

func main() {
	models := []string{"efficientnet-v1-b0", "resnet-50"}
	pimChannels := []int{4, 8, 12, 16, 20, 24}

	for _, name := range models {
		model, err := pimflow.BuildModel(name, pimflow.ModelOptions{Light: true})
		if err != nil {
			log.Fatal(err)
		}
		baseRep, err := pimflow.Execute(model, pimflow.PolicyBaseline)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (baseline %.3f ms)\n", name, baseRep.Seconds*1e3)
		fmt.Printf("  %-14s %-14s %s\n", "PIM channels", "GPU channels", "speedup")
		bestCh, bestSpeed := 0, 0.0
		for _, pc := range pimChannels {
			cfg := pimflow.DefaultConfig(pimflow.PolicyPIMFlow)
			cfg.PIMChannels = pc
			compiled, err := pimflow.Compile(model, cfg)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := compiled.Run()
			if err != nil {
				log.Fatal(err)
			}
			speed := float64(baseRep.TotalCycles) / float64(rep.TotalCycles)
			fmt.Printf("  %-14d %-14d %.3fx\n", pc, 32-pc, speed)
			if speed > bestSpeed {
				bestSpeed, bestCh = speed, pc
			}
		}
		fmt.Printf("  best division: %d PIM / %d GPU channels (%.2fx)\n\n", bestCh, 32-bestCh, bestSpeed)
	}
}
