GO ?= go

.PHONY: build test race vet fmt lint verify-models fuzz bench bench-scenarios bench-compare report cover ci

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -shuffle=on -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Repository conventions go vet cannot express: no wall-clock reads in
# simulated-timeline packages, no unguarded obs log calls.
lint:
	$(GO) run ./cmd/pimflow-lint .

# Static verification smoke gate: the graph-IR invariant checker and the
# PIM command-stream linter over every built-in model.
verify-models:
	$(GO) run ./cmd/pimflow -m=verify -n=all

# Short local fuzz pass over the graph JSON loader (the CI gate runs the
# seed corpus via go test; this explores further).
FUZZ_TIME ?= 20s

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReadJSON -fuzztime $(FUZZ_TIME) ./internal/graph

# Full benchmark sweep: harness figures plus the in-package engine
# benchmarks. Results are merged into $(BENCH_JSON) under $(BENCH_LABEL)
# (machine-readable ns/op, B/op, allocs/op) by cmd/pimflow-bench; the
# raw go test output still streams through to the terminal.
BENCH_JSON ?= BENCH_PR10.json
BENCH_LABEL ?= after

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem . ./internal/pim ./internal/codegen ./internal/serve ./internal/load | \
		$(GO) run ./cmd/pimflow-bench -label $(BENCH_LABEL) -out $(BENCH_JSON)

# Trace-driven serving scenarios (Poisson / diurnal / bursty) replayed
# deterministically; results (including attributed per-stage percentile
# splits) merge into the same snapshot file. The fleet sweep replays the
# same workload through 1-, 2-, and 4-machine fleets (fleet1/2/4).
bench-scenarios:
	$(GO) run ./cmd/pimflow-bench -label $(BENCH_LABEL) -out $(BENCH_JSON) -scenario poisson,diurnal,bursty,fleet -certify

# Regression gate: replay the Poisson scenario now and compare its
# deterministic virtual-time metrics against the committed baseline
# (exactly what CI runs). Exits nonzero on >10% regressions.
BENCH_BASELINE ?= BENCH_PR10.json

bench-compare:
	$(GO) run ./cmd/pimflow-bench -label compare-run -out /tmp/pimflow_bench_compare.json -scenario poisson
	$(GO) run ./cmd/pimflow-bench -compare -baseline-label $(BENCH_LABEL) -label compare-run \
		-metrics p50_simcycles,p99_simcycles,p999_simcycles,served,shed,makespan_cycles,p99_batch_window_cycles,p99_lease_wait_cycles,p99_execute_cycles \
		$(BENCH_BASELINE) /tmp/pimflow_bench_compare.json

# Regenerate the paper-evaluation report (must stay byte-identical to the
# committed experiments_report.txt regardless of profile-cache warmth).
report:
	$(GO) run ./cmd/pimflow-experiments -out experiments_report.txt

# Coverage floor on the observability layer: instrumentation that is
# nil-safe by contract is easy to leave silently untested, so the gate
# fails if internal/obs statement coverage drops below the floor.
OBS_COVER_FLOOR ?= 85.0

cover:
	$(GO) test -coverprofile=obs.cover.out ./internal/obs
	@total="$$($(GO) tool cover -func=obs.cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}')"; \
	rm -f obs.cover.out; \
	echo "internal/obs coverage: $$total% (floor $(OBS_COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(OBS_COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage below floor"; exit 1; }

# The full gate: formatting, static analysis, repo conventions, the test
# suite under the race detector, and the model verification sweep.
ci: fmt vet lint race verify-models
