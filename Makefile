GO ?= go

.PHONY: build test race vet fmt bench report cover ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem .

# Regenerate the paper-evaluation report (must stay byte-identical to the
# committed experiments_report.txt regardless of profile-cache warmth).
report:
	$(GO) run ./cmd/pimflow-experiments -out experiments_report.txt

# Coverage floor on the observability layer: instrumentation that is
# nil-safe by contract is easy to leave silently untested, so the gate
# fails if internal/obs statement coverage drops below the floor.
OBS_COVER_FLOOR ?= 85.0

cover:
	$(GO) test -coverprofile=obs.cover.out ./internal/obs
	@total="$$($(GO) tool cover -func=obs.cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}')"; \
	rm -f obs.cover.out; \
	echo "internal/obs coverage: $$total% (floor $(OBS_COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(OBS_COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage below floor"; exit 1; }

# The full gate: formatting, static analysis, and the test suite under
# the race detector.
ci: fmt vet race
