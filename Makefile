GO ?= go

.PHONY: build test race vet fmt bench report ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem .

# Regenerate the paper-evaluation report (must stay byte-identical to the
# committed experiments_report.txt regardless of profile-cache warmth).
report:
	$(GO) run ./cmd/pimflow-experiments -out experiments_report.txt

# The full gate: formatting, static analysis, and the test suite under
# the race detector.
ci: fmt vet race
